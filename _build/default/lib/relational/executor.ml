(** Query execution.

    The executor evaluates a bound AST directly with materializing
    operators. Its planning is deliberately simple but includes the two
    optimizations that matter for the paper's workloads:

    - per-relation predicate pushdown (selective scans of large base
      tables before any join), and
    - hash equi-joins: the FROM list is joined left to right; whenever the
      remaining WHERE conjuncts contain equality predicates connecting the
      joined prefix to the next relation, they are used as hash keys,
      otherwise the executor falls back to a filtered nested-loop join.

    Two orthogonal annotations can be threaded through execution:

    - {b lineage}: each output row carries the set of (relation, tid)
      input tuples that contributed to it (which-provenance). Aggregation
      and DISTINCT union the lineages of the rows they merge. This
      implements the paper's [f_Provenance] log-generating function.
    - {b source tids}: each output row carries, for every top-level FROM
      item of the outermost SELECT, the tid of the row it was derived
      from. Log compaction executes witness queries in this mode to mark
      retained log tuples in place. *)

type opts = { lineage : bool; track_src : bool }

let default_opts = { lineage = false; track_src = false }

type arow = {
  vals : Value.t array;
  lin : Lineage.t;
  src : (int * int) list;  (** (FROM-slot index, tid) pairs *)
}

type rel = { cols : string array; rows : arow list }

(* Scopes -------------------------------------------------------------- *)

type slot = { alias : string; scols : string array; offset : int }

type scope = { slots : slot array }

let make_scope inputs =
  let offset = ref 0 in
  let slots =
    Array.of_list
      (List.map
         (fun (alias, cols) ->
           let s = { alias = String.lowercase_ascii alias; scols = cols; offset = !offset } in
           offset := !offset + Array.length cols;
           s)
         inputs)
  in
  { slots }

(* Resolve a column reference to (slot index, absolute value index). *)
let resolve scope q name =
  let lname = String.lowercase_ascii name in
  let col_index slot =
    let rec go i =
      if i >= Array.length slot.scols then None
      else if String.lowercase_ascii slot.scols.(i) = lname then Some i
      else go (i + 1)
    in
    go 0
  in
  match q with
  | Some q -> (
    let lq = String.lowercase_ascii q in
    let rec find i =
      if i >= Array.length scope.slots then
        Errors.bind_error "unknown table or alias %S" q
      else if scope.slots.(i).alias = lq then i
      else find (i + 1)
    in
    let si = find 0 in
    match col_index scope.slots.(si) with
    | Some ci -> (si, scope.slots.(si).offset + ci)
    | None -> Errors.bind_error "no column %S in %S" name q)
  | None -> (
    let hits = ref [] in
    Array.iteri
      (fun si slot ->
        match col_index slot with
        | Some ci -> hits := (si, slot.offset + ci) :: !hits
        | None -> ())
      scope.slots;
    match !hits with
    | [ hit ] -> hit
    | [] -> Errors.bind_error "unknown column %S" name
    | _ -> Errors.bind_error "ambiguous column %S" name)

let env_of_vals scope vals : Eval.env =
  {
    Eval.col = (fun q name -> vals.(snd (resolve scope q name)));
    agg = None;
  }

(* Slot indices referenced by an expression (within the given scope). *)
let slots_of_expr scope e =
  let acc = ref [] in
  Ast.iter_expr
    (function
      | Ast.Col (q, name) ->
        let si, _ = resolve scope q name in
        if not (List.mem si !acc) then acc := si :: !acc
      | _ -> ())
    e;
  !acc

(* Joins --------------------------------------------------------------- *)

let concat_rows (a : arow) (b : arow) =
  { vals = Array.append a.vals b.vals; lin = Lineage.union a.lin b.lin; src = a.src @ b.src }

(* Decompose a conjunct as an equi-join between the joined prefix [left]
   and the next slot [right_slot]: returns (left_expr, right_expr). *)
let as_equi_key scope ~left ~right_slot = function
  | Ast.Binop (Ast.Eq, a, b) -> (
    let sa = slots_of_expr scope a and sb = slots_of_expr scope b in
    let in_left ss = ss <> [] && List.for_all (fun s -> List.mem s left) ss in
    let in_right ss = ss = [ right_slot ] in
    match () with
    | _ when in_left sa && in_right sb -> Some (a, b)
    | _ when in_left sb && in_right sa -> Some (b, a)
    | _ -> None)
  | _ -> None

(* Statistics hook: count of rows examined, for tests and benchmarks. *)
let rows_examined = ref 0

let note_rows n = rows_examined := !rows_examined + n

(* Execution ------------------------------------------------------------ *)

let rec exec_query (cat : Catalog.t) (opts : opts) (q : Ast.query) : rel =
  match q with
  | Ast.Select s -> exec_select cat opts s
  | Ast.Union { all; left; right } ->
    let l = exec_query cat opts left in
    let r = exec_query cat opts right in
    if Array.length l.cols <> Array.length r.cols then
      Errors.bind_error "UNION operands have different arities (%d vs %d)"
        (Array.length l.cols) (Array.length r.cols);
    if all then { l with rows = l.rows @ r.rows }
    else begin
      (* Merge duplicate lineages/source-tids, as for DISTINCT. *)
      let seen : (string, arow ref) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun row ->
          let key = Value.canonical_key_of_array row.vals in
          match Hashtbl.find_opt seen key with
          | Some kept ->
            kept :=
              { !kept with lin = Lineage.union !kept.lin row.lin;
                           src = !kept.src @ row.src }
          | None ->
            let cell = ref row in
            Hashtbl.add seen key cell;
            order := cell :: !order)
        (l.rows @ r.rows);
      { l with rows = List.rev_map (fun c -> !c) !order }
    end

and materialize_from cat opts idx (fi : Ast.from_item) : string * string array * arow list =
  match fi with
  | Ast.From_table { name; alias } ->
    let table = Catalog.find cat name in
    let cols = Array.of_list (Schema.column_names (Table.schema table)) in
    let tname = Table.name table in
    let rows =
      Table.fold
        (fun acc row ->
          let lin =
            if opts.lineage then Lineage.singleton tname (Row.tid row) else Lineage.off
          in
          let src = if opts.track_src then [ (idx, Row.tid row) ] else [] in
          { vals = Row.cells row; lin; src } :: acc)
        [] table
    in
    (Option.value alias ~default:name, cols, List.rev rows)
  | Ast.From_subquery { query; alias } ->
    (* Lineage flows through subqueries; source tids do not (witness
       queries are always built over flat FROM lists). *)
    let sub = exec_query cat { opts with track_src = false } query in
    (alias, sub.cols, sub.rows)

and exec_select cat opts (s : Ast.select) : rel =
  (* 1. Materialize inputs. *)
  let inputs = List.mapi (fun i fi -> materialize_from cat opts i fi) s.from in
  let scope = make_scope (List.map (fun (a, c, _) -> (a, c)) inputs) in
  let input_rows = Array.of_list (List.map (fun (_, _, r) -> r) inputs) in
  let nslots = Array.length scope.slots in
  (* 2. Classify conjuncts. *)
  let conjuncts = Ast.conjuncts_opt s.where in
  List.iter
    (fun c ->
      if Ast.expr_has_agg c then
        Errors.bind_error "aggregates are not allowed in WHERE")
    conjuncts;
  let with_slots = List.map (fun c -> (c, slots_of_expr scope c)) conjuncts in
  (* Constant conjuncts gate the whole query. *)
  let const_conjuncts, with_slots = List.partition (fun (_, ss) -> ss = []) with_slots in
  let const_ok =
    List.for_all
      (fun (c, _) -> Value.to_bool (Eval.eval (env_of_vals scope [||]) c))
      const_conjuncts
  in
  if not const_ok then
    finish_select scope s []
  else begin
    (* 3. Pushdown: apply single-slot conjuncts to their input. *)
    let single, multi =
      List.partition (fun (_, ss) -> match ss with [ _ ] -> true | _ -> false) with_slots
    in
    let filtered = Array.copy input_rows in
    List.iter
      (fun (c, ss) ->
        let si = List.hd ss in
        let slot = scope.slots.(si) in
        (* Evaluate against a single-slot view of the row. *)
        let local_scope = { slots = [| { slot with offset = 0 } |] } in
        filtered.(si) <-
          List.filter
            (fun r -> Value.to_bool (Eval.eval (env_of_vals local_scope r.vals) c))
            filtered.(si))
      single;
    (* 4. Join left to right. *)
    let remaining = ref multi in
    let joined_slots = ref [] in
    let joined_rows = ref [] in
    (* Offsets of each slot inside the accumulated row. *)
    let acc_offset = Array.make nslots (-1) in
    let acc_width = ref 0 in
    (* A scope view that resolves against the accumulated row layout. *)
    let acc_env vals : Eval.env =
      {
        Eval.col =
          (fun q name ->
            let si, abs = resolve scope q name in
            let off = acc_offset.(si) in
            if off < 0 then Errors.bind_error "column of not-yet-joined relation";
            vals.(off + (abs - scope.slots.(si).offset)));
        agg = None;
      }
    in
    for si = 0 to nslots - 1 do
      let rows = filtered.(si) in
      let slot = scope.slots.(si) in
      let local_scope = { slots = [| { slot with offset = 0 } |] } in
      if !joined_slots = [] then begin
        joined_rows := rows;
        joined_slots := [ si ];
        acc_offset.(si) <- 0;
        acc_width := Array.length slot.scols
      end
      else begin
        (* Find applicable conjuncts once this slot joins. *)
        let applicable, rest =
          List.partition
            (fun (_, ss) -> List.for_all (fun x -> List.mem x (si :: !joined_slots)) ss)
            !remaining
        in
        remaining := rest;
        let keys, residual =
          List.fold_left
            (fun (keys, residual) (c, _) ->
              match as_equi_key scope ~left:!joined_slots ~right_slot:si c with
              | Some k -> (k :: keys, residual)
              | None -> (keys, c :: residual))
            ([], []) applicable
        in
        let keys = List.rev keys and residual = List.rev residual in
        let out = ref [] in
        (if keys <> [] then begin
           (* Hash join: build on the new slot, probe with the prefix. *)
           let build = Hashtbl.create (max 16 (List.length rows)) in
           List.iter
             (fun r ->
               let kv =
                 Array.of_list
                   (List.map
                      (fun (_, re) -> Eval.eval (env_of_vals local_scope r.vals) re)
                      keys)
               in
               let key = Value.canonical_key_of_array kv in
               Hashtbl.add build key r)
             rows;
           List.iter
             (fun l ->
               let kv =
                 Array.of_list
                   (List.map (fun (le, _) -> Eval.eval (acc_env l.vals) le) keys)
               in
               let key = Value.canonical_key_of_array kv in
               List.iter
                 (fun r -> out := concat_rows l r :: !out)
                 (Hashtbl.find_all build key))
             !joined_rows
         end
         else
           (* Nested-loop cross product. *)
           List.iter
             (fun l -> List.iter (fun r -> out := concat_rows l r :: !out) rows)
             !joined_rows);
        note_rows (List.length !out);
        acc_offset.(si) <- !acc_width;
        acc_width := !acc_width + Array.length slot.scols;
        joined_slots := si :: !joined_slots;
        (* Residual filters that became applicable. *)
        let rows' =
          if residual = [] then List.rev !out
          else
            List.filter
              (fun r ->
                List.for_all
                  (fun c -> Value.to_bool (Eval.eval (acc_env r.vals) c))
                  residual)
              (List.rev !out)
        in
        joined_rows := rows'
      end
    done;
    (* Any conjunct left over means unresolved references — should not
       happen after the loop, but guard anyway. *)
    (match !remaining with
    | [] -> ()
    | (c, _) :: _ ->
      Errors.bind_error "could not place predicate %s" (Sql_print.expr c));
    (* 5. The accumulated layout equals the scope layout because slots are
       joined in order 0..n-1. An empty FROM contributes one empty row so
       that [SELECT 1] yields a single tuple. *)
    let rows =
      if nslots = 0 then [ { vals = [||]; lin = Lineage.empty; src = [] } ]
      else !joined_rows
    in
    finish_select scope s rows
  end

(* Group, project, distinct, order, limit. *)
and finish_select scope (s : Ast.select) (rows : arow list) : rel =
  let base_env vals : Eval.env = env_of_vals scope vals in
  (* Decide whether this is an aggregate query. *)
  let item_exprs =
    List.filter_map
      (function Ast.Sel_expr (e, _) -> Some e | Ast.Star | Ast.Table_star _ -> None)
      s.items
  in
  let has_agg =
    s.group_by <> [] || s.having <> None
    || List.exists Ast.expr_has_agg item_exprs
  in
  (* Expand Star / Table_star into concrete output columns. *)
  let star_columns () =
    Array.to_list scope.slots
    |> List.concat_map (fun slot ->
           Array.to_list (Array.mapi (fun i c -> (slot.offset + i, c)) slot.scols))
  in
  let table_star_columns t =
    let lt = String.lowercase_ascii t in
    match Array.to_list scope.slots |> List.find_opt (fun sl -> sl.alias = lt) with
    | None -> Errors.bind_error "unknown table or alias %S in select list" t
    | Some slot ->
      Array.to_list (Array.mapi (fun i c -> (slot.offset + i, c)) slot.scols)
  in
  (* The projection plan: a list of (column name, value extractor). *)
  let projections ~env_of : (string * (arow -> Value.t)) list =
    List.concat_map
      (function
        | Ast.Star ->
          List.map (fun (idx, name) -> (name, fun r -> r.vals.(idx))) (star_columns ())
        | Ast.Table_star t ->
          List.map (fun (idx, name) -> (name, fun r -> r.vals.(idx))) (table_star_columns t)
        | Ast.Sel_expr (e, alias) ->
          let name =
            match alias, e with
            | Some a, _ -> a
            | None, Ast.Col (_, c) -> c
            | None, Ast.Agg_call (agg, _, _) ->
              String.lowercase_ascii (Sql_print.agg_str agg)
            | None, _ -> "?column?"
          in
          [ (name, fun r -> Eval.eval (env_of r) e) ])
      s.items
  in
  let produced : (arow * (string * (arow -> Value.t)) list) list =
    if not has_agg then
      let projs = projections ~env_of:(fun r -> base_env r.vals) in
      List.map (fun r -> (r, projs)) rows
    else begin
      (* Group rows. *)
      let groups : (string, arow list ref) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun r ->
          let key =
            Value.canonical_key_of_array
              (Array.of_list
                 (List.map (fun e -> Eval.eval (base_env r.vals) e) s.group_by))
          in
          match Hashtbl.find_opt groups key with
          | Some cell -> cell := r :: !cell
          | None ->
            let cell = ref [ r ] in
            Hashtbl.add groups key cell;
            order := key :: !order)
        rows;
      let group_list =
        List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order
      in
      (* A query with no GROUP BY but aggregates/having forms one group,
         even over empty input. *)
      let group_list = if s.group_by = [] then [ List.rev rows ] else group_list in
      let agg_calls =
        List.sort_uniq compare
          (List.concat_map Aggregate.calls_in_expr
             (item_exprs @ Option.to_list s.having @ List.map fst s.order_by))
      in
      List.filter_map
        (fun grows ->
          (* Compute each aggregate for this group. *)
          let computed =
            List.map
              (fun call ->
                match call with
                | Ast.Agg_call (agg, distinct, arg) ->
                  let eval_arg r =
                    match arg with
                    | None -> Value.Int 1
                    | Some e -> Eval.eval (base_env r.vals) e
                  in
                  (call, Aggregate.compute agg ~distinct ~eval_arg grows)
                | _ -> assert false)
              agg_calls
          in
          let rep =
            match grows with
            | r :: _ -> r
            | [] -> { vals = [||]; lin = Lineage.empty; src = [] }
          in
          let group_env _r : Eval.env =
            {
              Eval.col =
                (fun q name ->
                  if rep.vals = [||] then Value.Null
                  else (base_env rep.vals).Eval.col q name);
              agg = Some (fun e -> List.assoc_opt e computed);
            }
          in
          (* Merge lineage and src across the group: an output tuple's
             provenance is the union of its contributing inputs. *)
          let merged =
            {
              vals = rep.vals;
              lin = Lineage.union_all (List.map (fun r -> r.lin) grows);
              src = List.concat_map (fun r -> r.src) grows;
            }
          in
          let keep =
            match s.having with
            | None -> true
            | Some h -> Value.to_bool (Eval.eval (group_env merged) h)
          in
          if keep then
            let projs = projections ~env_of:group_env in
            Some (merged, projs)
          else None)
        group_list
    end
  in
  (* Evaluate projections (and order keys) per produced row. *)
  let outputs =
    List.map
      (fun (r, projs) ->
        let vals = Array.of_list (List.map (fun (_, f) -> f r) projs) in
        let okeys =
          List.map
            (fun (e, dir) ->
              (* ORDER BY may reference an output alias. *)
              let v =
                match e with
                | Ast.Col (None, name) -> (
                  match
                    List.find_opt
                      (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name)
                      projs
                  with
                  | Some (_, f) -> f r
                  | None -> (
                    match projs with
                    | _ -> (
                      try Eval.eval (base_env r.vals) e
                      with _ when has_agg -> Value.Null)))
                | _ -> (
                  try Eval.eval (base_env r.vals) e
                  with _ when has_agg -> Value.Null)
              in
              (v, dir))
            s.order_by
        in
        ({ r with vals }, okeys))
      produced
  in
  (* Column names derive from the projection plan only; the extractor
     closures are never invoked here. *)
  let cols =
    Array.of_list (List.map fst (projections ~env_of:(fun _ -> Eval.const_env)))
  in
  (* DISTINCT / DISTINCT ON *)
  let outputs =
    match s.distinct with
    | Ast.All -> outputs
    | Ast.Distinct ->
      (* Duplicates are merged, not dropped: the surviving tuple's lineage
         (and source tids) absorbs those of every duplicate, matching the
         "set of contributing tuples" provenance semantics. *)
      let seen : (string, arow ref * 'k) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun (r, ok) ->
          let key = Value.canonical_key_of_array r.vals in
          match Hashtbl.find_opt seen key with
          | Some (kept, _) ->
            kept := { !kept with lin = Lineage.union !kept.lin r.lin;
                                 src = !kept.src @ r.src }
          | None ->
            let cell = ref r in
            Hashtbl.add seen key (cell, ok);
            order := (cell, ok) :: !order)
        outputs;
      List.rev_map (fun (cell, ok) -> (!cell, ok)) !order
    | Ast.Distinct_on keys ->
      (* Keys are evaluated in the *input* row context; we must have kept
         enough information, so we recompute from the produced pairs. Since
         DISTINCT ON appears only in witness queries built over flat FROM
         lists without aggregation, the input row is available. *)
      let seen = Hashtbl.create 64 in
      List.filter_map
        (fun ((r, ok), input) ->
          let kv =
            Array.of_list (List.map (fun e -> Eval.eval (base_env input.vals) e) keys)
          in
          let key = Value.canonical_key_of_array kv in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (r, ok)
          end)
        (List.map2 (fun out (input, _) -> (out, input)) outputs produced)
  in
  (* ORDER BY, LIMIT *)
  let outputs =
    if s.order_by = [] then outputs
    else
      List.stable_sort
        (fun (_, ka) (_, kb) ->
          let rec cmp a b =
            match a, b with
            | [], [] -> 0
            | (va, d) :: ra, (vb, _) :: rb ->
              let c = Value.compare va vb in
              let c = match d with Ast.Asc -> c | Ast.Desc -> -c in
              if c <> 0 then c else cmp ra rb
            | _ -> 0
          in
          cmp ka kb)
        outputs
  in
  let outputs =
    match s.limit with
    | None -> outputs
    | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: xs -> x :: take (k - 1) xs
      in
      take n outputs
  in
  { cols; rows = List.map fst outputs }

(* Public API ----------------------------------------------------------- *)

type row_out = {
  values : Value.t array;
  lineage : (string * int) list;
  src_tids : (int * int) list;
}

type result = { columns : string list; out_rows : row_out list }

let run ?(opts = default_opts) (cat : Catalog.t) (q : Ast.query) : result =
  let rel = exec_query cat opts q in
  {
    columns = Array.to_list rel.cols;
    out_rows =
      List.map
        (fun r ->
          { values = r.vals; lineage = Lineage.to_list r.lin; src_tids = r.src })
        rel.rows;
  }

let run_sql ?opts cat sql = run ?opts cat (Parser.query sql)

(* Convenience: is the query result empty? Policies are satisfied iff so. *)
let is_empty ?(opts = default_opts) cat q =
  let rel = exec_query cat opts q in
  rel.rows = []
