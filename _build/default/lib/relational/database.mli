(** Convenience facade over the substrate: a catalog plus string-level
    SQL entry points. This is the interface the DataLawyer middleware,
    the examples and the CLI use. *)

type t

val create : unit -> t
val catalog : t -> Catalog.t

(** Execute a single SQL statement (query or DML). *)
val exec : t -> string -> Dml.outcome

(** Execute a [';']-separated script; returns the outcomes in order. *)
val exec_script : t -> string -> Dml.outcome list

(** Run a query from SQL text. *)
val query : ?opts:Executor.opts -> t -> string -> Executor.result

(** Run a query AST. *)
val query_ast : ?opts:Executor.opts -> t -> Ast.query -> Executor.result

(** Query results as value lists (tests, examples). *)
val rows : ?opts:Executor.opts -> t -> string -> Value.t list list

(** Run a query expected to return exactly one cell.
    @raise Errors.Sql_error otherwise. *)
val scalar : t -> string -> Value.t

(** Look up a table. @raise Errors.Sql_error if absent. *)
val table : t -> string -> Table.t

(** Render a result as an aligned text table. *)
val render : Executor.result -> string
