(** Relation schemas: ordered lists of named, typed columns. *)

type column = { name : string; ty : Ty.t }

type t = column array

(** Build a schema from [(name, type)] pairs.
    @raise Errors.Sql_error on duplicate column names (case-insensitive). *)
val make : (string * Ty.t) list -> t

(** Number of columns. *)
val arity : t -> int

val columns : t -> column list
val column_names : t -> string list

(** Case-insensitive column lookup. *)
val find_index : t -> string -> int option

(** The [i]-th column. *)
val column : t -> int -> column

val pp : Format.formatter -> t -> unit
val to_string : t -> string
