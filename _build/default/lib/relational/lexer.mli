(** Hand-written SQL lexer.

    Identifiers (plus double-quoted identifiers), integer/float literals,
    single-quoted strings with [''] escaping, [--] line and [/* */] block
    comments, and {!Token}'s operator set. Raises {!Errors.Sql_error}
    with position information on lexical errors. *)

(** Tokenize the whole input; each token is paired with the (line,
    column) at which it starts. The last token is always {!Token.Eof}. *)
val tokenize : string -> (Token.t * (int * int)) array
