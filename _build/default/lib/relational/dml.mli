(** Data-manipulation statements: INSERT, DELETE, UPDATE, CREATE/DROP. *)

type outcome =
  | Rows of Executor.result  (** result of a query *)
  | Affected of int  (** row count of a DML statement *)
  | Created of string
  | Dropped of string

(** Execute one statement against the catalog.
    @raise Errors.Sql_error on any failure. *)
val exec : Catalog.t -> Ast.stmt -> outcome
