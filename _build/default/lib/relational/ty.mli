(** Column types of the relational substrate. *)

type t =
  | Int  (** 63-bit integers; also used for logical timestamps *)
  | Float
  | Bool
  | Text

(** Canonical SQL spelling, e.g. ["INT"]. *)
val to_string : t -> string

(** Parse a SQL type name; recognizes common synonyms ([INTEGER],
    [VARCHAR], [BOOLEAN], ...). [None] for unknown names. *)
val of_string : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
