(** CSV import/export for tables.

    Lets users load their own data into a DataLawyer-wrapped database (the
    CLI's [load]) and dump tables or usage logs for offline analysis.
    Quoting follows RFC 4180: fields containing commas, quotes or
    newlines are double-quoted with [""] escaping. On import, column
    types are inferred (Int ⊂ Float; [true]/[false] as Bool; else Text)
    unless the table already exists, in which case values are coerced to
    its schema. *)

let quote_field s =
  let needs =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* Render a value for CSV; NULL becomes the empty field. *)
let field_of_value = function
  | Value.Null -> ""
  | v -> quote_field (Value.to_string v)

let export (db : Database.t) ~(table : string) : string =
  let t = Database.table db table in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "," (List.map quote_field (Schema.column_names (Table.schema t))));
  Buffer.add_char buf '\n';
  Table.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (List.map field_of_value (Array.to_list (Row.cells row))));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let export_to_file db ~table ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (export db ~table))

(* Parsing ---------------------------------------------------------------- *)

(* Split CSV text into records of fields, honoring quoted fields. *)
let parse_csv (text : string) : string list list =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length text in
  let finish_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let finish_record () =
    finish_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then finish_record ())
    else
      match text.[i] with
      | ',' ->
        finish_field ();
        plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
        finish_record ();
        plain (i + 2)
      | '\n' | '\r' ->
        finish_record ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then Errors.parse_error "CSV: unterminated quoted field"
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !records

(* Type inference for one column of textual fields. *)
let infer_type (fields : string list) : Ty.t =
  let non_empty = List.filter (fun s -> s <> "") fields in
  let all p = non_empty <> [] && List.for_all p non_empty in
  if all (fun s -> int_of_string_opt s <> None) then Ty.Int
  else if all (fun s -> float_of_string_opt s <> None) then Ty.Float
  else if
    all (fun s ->
        match String.lowercase_ascii s with "true" | "false" -> true | _ -> false)
  then Ty.Bool
  else Ty.Text

let value_of_field (ty : Ty.t) (s : string) : Value.t =
  if s = "" then Value.Null
  else
    match ty with
    | Ty.Int -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> Errors.type_error "CSV: %S is not an INT" s)
    | Ty.Float -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> Errors.type_error "CSV: %S is not a FLOAT" s)
    | Ty.Bool -> (
      match String.lowercase_ascii s with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> Errors.type_error "CSV: %S is not a BOOL" s)
    | Ty.Text -> Value.Str s

(* Import CSV text (first record = header) into [table]; creates the
   table with inferred column types when absent. Returns the number of
   rows inserted. *)
let import (db : Database.t) ~(table : string) (text : string) : int =
  match parse_csv text with
  | [] -> Errors.parse_error "CSV: empty input"
  | header :: rows ->
    let ncols = List.length header in
    List.iteri
      (fun i r ->
        if List.length r <> ncols then
          Errors.parse_error "CSV: record %d has %d fields, expected %d" (i + 1)
            (List.length r) ncols)
      rows;
    let t =
      match Catalog.find_opt (Database.catalog db) table with
      | Some t -> t
      | None ->
        let types =
          List.mapi (fun ci _ -> infer_type (List.map (fun r -> List.nth r ci) rows)) header
        in
        Catalog.create_table (Database.catalog db) ~name:table
          ~schema:(Schema.make (List.combine header types))
    in
    let schema = Table.schema t in
    if Schema.arity schema <> ncols then
      Errors.runtime_error "CSV: table %s has %d columns, file has %d" table
        (Schema.arity schema) ncols;
    List.iter
      (fun r ->
        let cells =
          Array.of_list
            (List.mapi
               (fun ci field -> value_of_field (Schema.column schema ci).Schema.ty field)
               r)
        in
        ignore (Table.insert t cells))
      rows;
    List.length rows

let import_from_file db ~table ~path =
  import db ~table (In_channel.with_open_text path In_channel.input_all)
