(** Hand-written SQL lexer.

    Supports: identifiers (letters, digits, [_], starting with a letter or
    [_]), double-quoted identifiers, integer and float literals,
    single-quoted string literals with [''] escaping, [--] line comments
    and [/* ... */] block comments, and the operator/punctuation set of
    {!Token}. Positions are tracked for error messages. *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let create src = { src; pos = 0; line = 1; col = 1 }

let error lx fmt =
  Format.kasprintf
    (fun s -> Errors.parse_error "line %d, col %d: %s" lx.line lx.col s)
    fmt

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some '-' when peek2 lx = Some '-' ->
    while peek lx <> None && peek lx <> Some '\n' do
      advance lx
    done;
    skip_trivia lx
  | Some '/' when peek2 lx = Some '*' ->
    advance lx;
    advance lx;
    let rec go () =
      match peek lx with
      | None -> error lx "unterminated block comment"
      | Some '*' when peek2 lx = Some '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        go ()
    in
    go ();
    skip_trivia lx
  | _ -> ()

let lex_ident lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let lex_quoted_ident lx =
  advance lx;
  (* skip opening double quote *)
  let buf = Buffer.create 8 in
  let rec go () =
    match peek lx with
    | None -> error lx "unterminated quoted identifier"
    | Some '"' -> advance lx
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      go ()
  in
  go ();
  Buffer.contents buf

let lex_string lx =
  advance lx;
  (* opening ' *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> error lx "unterminated string literal"
    | Some '\'' when peek2 lx = Some '\'' ->
      Buffer.add_char buf '\'';
      advance lx;
      advance lx;
      go ()
    | Some '\'' -> advance lx
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      go ()
  in
  go ();
  Buffer.contents buf

let lex_number lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_float = ref false in
  (match peek lx, peek2 lx with
  | Some '.', Some c when is_digit c ->
    is_float := true;
    advance lx;
    while (match peek lx with Some c -> is_digit c | None -> false) do
      advance lx
    done
  | _ -> ());
  (match peek lx with
  | Some ('e' | 'E') ->
    (match peek2 lx with
    | Some c when is_digit c || c = '+' || c = '-' ->
      is_float := true;
      advance lx;
      (match peek lx with Some ('+' | '-') -> advance lx | _ -> ());
      while (match peek lx with Some c -> is_digit c | None -> false) do
        advance lx
      done
    | _ -> ())
  | _ -> ());
  let text = String.sub lx.src start (lx.pos - start) in
  if !is_float then Token.Float_lit (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Token.Int_lit i
    | None -> Token.Float_lit (float_of_string text)

let next_token lx : Token.t =
  skip_trivia lx;
  match peek lx with
  | None -> Token.Eof
  | Some c when is_ident_start c -> Token.Ident (lex_ident lx)
  | Some '"' -> Token.Quoted_ident (lex_quoted_ident lx)
  | Some '\'' -> Token.Str_lit (lex_string lx)
  | Some c when is_digit c -> lex_number lx
  | Some '(' -> advance lx; Token.Lparen
  | Some ')' -> advance lx; Token.Rparen
  | Some ',' -> advance lx; Token.Comma
  | Some '.' -> advance lx; Token.Dot
  | Some '*' -> advance lx; Token.Star
  | Some '+' -> advance lx; Token.Plus
  | Some '-' -> advance lx; Token.Minus
  | Some '/' -> advance lx; Token.Slash
  | Some '%' -> advance lx; Token.Percent
  | Some ';' -> advance lx; Token.Semicolon
  | Some '=' -> advance lx; Token.Eq
  | Some '!' when peek2 lx = Some '=' -> advance lx; advance lx; Token.Neq
  | Some '<' when peek2 lx = Some '>' -> advance lx; advance lx; Token.Neq
  | Some '<' when peek2 lx = Some '=' -> advance lx; advance lx; Token.Le
  | Some '<' -> advance lx; Token.Lt
  | Some '>' when peek2 lx = Some '=' -> advance lx; advance lx; Token.Ge
  | Some '>' -> advance lx; Token.Gt
  | Some '|' when peek2 lx = Some '|' -> advance lx; advance lx; Token.Concat
  | Some c -> error lx "unexpected character %C" c

(* Tokenize the whole input; each token is paired with the line/column at
   which it starts. *)
let tokenize src : (Token.t * (int * int)) array =
  let lx = create src in
  let out = ref [] in
  let rec go () =
    skip_trivia lx;
    let pos = (lx.line, lx.col) in
    let tok = next_token lx in
    out := (tok, pos) :: !out;
    if tok <> Token.Eof then go ()
  in
  go ();
  Array.of_list (List.rev !out)
