(** Lineage (which-provenance) sets.

    A lineage is a set of [(input_relation, input_tid)] pairs — the "set
    of contributing tuples" provenance the paper adopts (its [43]). The
    executor threads a lineage through every operator when tracking is
    enabled; the [Off] state makes the common non-provenance path free. *)

type t

(** Tracking disabled: absorbing under {!union}. *)
val off : t

(** The empty (but tracking) lineage. *)
val empty : t

val singleton : string -> int -> t

(** Set union; [Off] absorbs. *)
val union : t -> t -> t

val union_all : t list -> t

(** Elements in lexicographic order; [[]] for [Off]. *)
val to_list : t -> (string * int) list

val cardinal : t -> int
val is_tracking : t -> bool
