(** The evaluation policies P1–P6 (paper Table 2) over the synthetic
    MIMIC instance, with wall-clock windows replaced by logical tick
    windows (the engine's clock advances by one per query).

    Classification (checked by tests): P1 monotone+time-dependent;
    P2/P3/P4 time-independent; P4 non-monotone; P5/P6 sliding windows
    over provenance. *)

type params = {
  p1_window : int;
  p1_max_users : int;
  p3_max_output : int;
  p4_min_inputs : int;
  p5_window : int;
  p5_max_fraction : float;  (** fraction of d_patients; paper: half *)
  p6_window : int;
  p6_max_uses : int;
}

val default_params : params

type t = { name : string; sql : string }

val p1 : params -> t
val p2 : params -> t
val p3 : params -> t
val p4 : params -> t
val p5 : params -> n_patients:int -> t
val p6 : params -> t

val all : ?params:params -> n_patients:int -> unit -> t list

(** @raise Invalid_argument for unknown names. *)
val find : ?params:params -> n_patients:int -> string -> t
