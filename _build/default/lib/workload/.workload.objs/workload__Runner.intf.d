lib/workload/runner.mli: Datalawyer Engine Mimic Policies Queries Relational Stats
