lib/workload/policies.mli:
