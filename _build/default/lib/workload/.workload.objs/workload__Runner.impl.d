lib/workload/runner.ml: Datalawyer Engine List Mimic Policies Queries Relational Stats Unix
