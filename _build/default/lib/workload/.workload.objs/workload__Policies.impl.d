lib/workload/policies.ml: List Printf
