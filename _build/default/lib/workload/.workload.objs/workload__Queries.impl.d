lib/workload/queries.ml: List Printf
