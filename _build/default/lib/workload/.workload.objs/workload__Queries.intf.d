lib/workload/queries.mli:
