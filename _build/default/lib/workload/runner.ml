(** Harness for running experiment configurations: build an instance,
    install policies, submit query streams, and aggregate per-phase
    statistics. Used by both the test suite and the benchmark drivers. *)

open Datalawyer

type setup = {
  db : Relational.Database.t;
  engine : Engine.t;
  mimic : Mimic.Generate.config;
  params : Policies.params;
}

let make ?(mimic = Mimic.Generate.small_config) ?(params = Policies.default_params)
    ?(config = Engine.default_config) ?(policy_names = [ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ])
    () : setup =
  let db = Mimic.Generate.database ~config:mimic () in
  let engine = Engine.create ~config db in
  List.iter
    (fun name ->
      let p = Policies.find ~params ~n_patients:mimic.Mimic.Generate.n_patients name in
      ignore (Engine.add_policy engine ~name:p.Policies.name p.Policies.sql))
    policy_names;
  { db; engine; mimic; params }

let query s name =
  Queries.find ~n_patients:s.mimic.Mimic.Generate.n_patients name

(* Submit [n] copies of a query as [uid]; returns per-query stats (in
   submission order) and the number of rejections. *)
let run_stream (s : setup) ~uid ~n (q : Queries.t) : Stats.t list * int =
  let rejected = ref 0 in
  let stats = ref [] in
  for _ = 1 to n do
    match Engine.submit s.engine ~uid q.Queries.sql with
    | Engine.Accepted (_, st) -> stats := st :: !stats
    | Engine.Rejected (_, st) ->
      incr rejected;
      stats := st :: !stats
  done;
  (List.rev !stats, !rejected)

(* Plain query execution time without any policy machinery (the paper's
   "unmodified PostgreSQL" bar), averaged over [n] runs. *)
let plain_query_time (s : setup) ~n (q : Queries.t) : float =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (Relational.Database.query s.db q.Queries.sql)
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int n
