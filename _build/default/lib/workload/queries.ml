(** The evaluation queries W1–W4 (Table 3), adapted to the synthetic
    MIMIC-shaped instance. The paper chose them to cover a wide range of
    runtimes (0.25 ms … 1.7 s); here the ranges scale with the instance:

    - W1: point lookup of one patient (fastest);
    - W2: join + aggregation for a single patient;
    - W3: join + aggregation over ~7% of the patients;
    - W4: join + aggregation over ~45% of the patients (slowest). *)

type t = { name : string; sql : string }

let w1 ~n_patients =
  {
    name = "W1";
    sql =
      Printf.sprintf "SELECT * FROM d_patients WHERE subject_id = %d"
        (n_patients * 186 / 1000 mod n_patients);
  }

let w2 ~n_patients =
  let subject = n_patients * 489 / 1000 mod n_patients in
  {
    name = "W2";
    sql =
      Printf.sprintf
        "SELECT c.subject_id, p.sex, COUNT(c.subject_id) FROM chartevents c, \
         d_patients p WHERE c.subject_id = %d AND p.subject_id = c.subject_id \
         AND itemid = 211 GROUP BY c.subject_id, p.sex HAVING \
         COUNT(c.subject_id) > 1"
        subject;
  }

let w3 ~n_patients =
  let hi = n_patients in
  let lo = n_patients - max 2 (n_patients * 7 / 100) in
  {
    name = "W3";
    sql =
      Printf.sprintf
        "SELECT c.subject_id, p.sex, COUNT(c.subject_id) FROM chartevents c, \
         d_patients p WHERE c.subject_id < %d AND c.subject_id > %d AND \
         p.subject_id = c.subject_id AND itemid = 211 GROUP BY c.subject_id, \
         p.sex HAVING COUNT(c.subject_id) > 2"
        hi lo;
  }

let w4 ~n_patients =
  let hi = n_patients * 98 / 100 in
  let lo = n_patients * 35 / 100 in
  {
    name = "W4";
    sql =
      Printf.sprintf
        "SELECT c.subject_id, p.sex, COUNT(c.subject_id) FROM chartevents c, \
         d_patients p WHERE c.subject_id < %d AND c.subject_id > %d AND \
         p.subject_id = c.subject_id AND itemid = 211 GROUP BY c.subject_id, \
         p.sex HAVING COUNT(c.subject_id) > 1"
        hi lo;
  }

let all ~n_patients = [ w1 ~n_patients; w2 ~n_patients; w3 ~n_patients; w4 ~n_patients ]

let find ~n_patients name =
  match List.find_opt (fun q -> q.name = name) (all ~n_patients) with
  | Some q -> q
  | None -> invalid_arg ("unknown workload query " ^ name)
