(** The evaluation queries W1–W4 (paper Table 3), adapted to the synthetic
    MIMIC-shaped instance. They cover a wide range of runtimes: W1 is a
    point lookup; W2 joins and aggregates one patient; W3 covers ~7% of
    the patients; W4 ~60%. *)

type t = { name : string; sql : string }

val w1 : n_patients:int -> t
val w2 : n_patients:int -> t
val w3 : n_patients:int -> t
val w4 : n_patients:int -> t

val all : n_patients:int -> t list

(** @raise Invalid_argument for unknown names. *)
val find : n_patients:int -> string -> t
