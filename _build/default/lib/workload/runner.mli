(** Harness for running experiment configurations: build an instance,
    install policies, submit query streams, aggregate per-phase stats. *)

open Datalawyer

type setup = {
  db : Relational.Database.t;
  engine : Engine.t;
  mimic : Mimic.Generate.config;
  params : Policies.params;
}

(** Build an instance and engine with the named Table 2 policies
    installed (default: all six). *)
val make :
  ?mimic:Mimic.Generate.config ->
  ?params:Policies.params ->
  ?config:Engine.config ->
  ?policy_names:string list ->
  unit ->
  setup

(** Resolve a workload query for this setup's scale. *)
val query : setup -> string -> Queries.t

(** Submit [n] copies of a query as [uid]; returns per-query stats in
    submission order and the number of rejections. *)
val run_stream : setup -> uid:int -> n:int -> Queries.t -> Stats.t list * int

(** Mean plain execution time without policy machinery (the paper's
    "unmodified PostgreSQL" bar). *)
val plain_query_time : setup -> n:int -> Queries.t -> float
