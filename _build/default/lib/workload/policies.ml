(** The evaluation policies P1–P6 (Table 2), expressed in DataLawyer's
    policy language over the synthetic MIMIC instance.

    The paper's wall-clock windows (200 ms, 3 s, 300 ms) become logical
    tick windows: the engine's clock advances by one per query, and §3.1
    already assumes an integer clock. Window sizes and thresholds are
    parameters so experiments can scale them with the workload.

    Classification expectations (checked by tests):
    - P1: monotone, interleavable, time-dependent (sliding window);
    - P2: time-independent, no aggregates (uses only users + schema);
    - P3: time-independent, monotone;
    - P4: time-independent, non-monotone (COUNT <= k);
    - P5, P6: time-dependent sliding windows over provenance. *)

type params = {
  p1_window : int;  (** ticks; paper: 200 ms *)
  p1_max_users : int;
  p3_max_output : int;
  p4_min_inputs : int;
  p5_window : int;  (** ticks; paper: 3 s *)
  p5_max_fraction : float;  (** fraction of d_patients; paper: half *)
  p6_window : int;  (** ticks; paper: 300 ms *)
  p6_max_uses : int;
}

let default_params =
  {
    p1_window = 50;
    p1_max_users = 10;
    p3_max_output = 100;
    p4_min_inputs = 3;
    p5_window = 500;
    p5_max_fraction = 0.5;
    p6_window = 100;
    p6_max_uses = 20;
  }

type t = { name : string; sql : string }

let p1 ps =
  {
    name = "P1";
    sql =
      Printf.sprintf
        "SELECT DISTINCT 'P1 violated: more than %d distinct users from group \
         X in a window of %d ticks' AS errorMessage FROM users u, user_groups \
         g, clock c WHERE u.uid = g.uid AND g.gid = 'X' AND u.ts > c.ts - %d \
         HAVING COUNT(DISTINCT u.uid) > %d"
        ps.p1_max_users ps.p1_window ps.p1_window ps.p1_max_users;
  }

let p2 _ps =
  {
    name = "P2";
    sql =
      "SELECT DISTINCT 'P2 violated: user 1 may not join poe_order with \
       relations other than poe_med' AS errorMessage FROM schema s1, schema \
       s2, users u WHERE s1.ts = s2.ts AND s2.ts = u.ts AND u.uid = 1 AND \
       s1.irid = 'poe_order' AND s2.irid != 'poe_order' AND s2.irid != \
       'poe_med'";
  }

let p3 ps =
  {
    name = "P3";
    sql =
      Printf.sprintf
        "SELECT DISTINCT 'P3 violated: user 1 query on d_patients returned \
         more than %d tuples' AS errorMessage FROM provenance p, users u \
         WHERE p.ts = u.ts AND u.uid = 1 AND p.irid = 'd_patients' GROUP BY \
         p.ts HAVING COUNT(DISTINCT p.otid) > %d"
        ps.p3_max_output ps.p3_max_output;
  }

let p4 ps =
  {
    name = "P4";
    sql =
      Printf.sprintf
        "SELECT DISTINCT 'P4 violated: an output tuple over chartevents for \
         user 1 has %d or fewer contributing inputs' AS errorMessage FROM \
         provenance p, users u WHERE p.ts = u.ts AND u.uid = 1 AND p.irid = \
         'chartevents' GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) <= \
         %d"
        ps.p4_min_inputs ps.p4_min_inputs;
  }

(* P5's threshold ("half the total tuples in d_patients") is a constant
   computed from the instance, since HAVING admits no subqueries (§3.1). *)
let p5 ps ~n_patients =
  let threshold = int_of_float (float_of_int n_patients *. ps.p5_max_fraction) in
  {
    name = "P5";
    sql =
      Printf.sprintf
        "SELECT DISTINCT 'P5 violated: user 1 used more than %d d_patients \
         tuples within %d ticks' AS errorMessage FROM provenance p, users u, \
         clock c WHERE p.ts = u.ts AND u.uid = 1 AND p.irid = 'd_patients' \
         AND p.ts > c.ts - %d HAVING COUNT(DISTINCT p.itid) > %d"
        threshold ps.p5_window ps.p5_window threshold;
  }

(* P6 counts per-tuple uses as distinct (ts, otid) pairs, encoded as a
   single expression so the count stays DISTINCT (and hence safe for
   partial-policy pruning, see {!Datalawyer.Policy}). *)
let p6 ps =
  {
    name = "P6";
    sql =
      Printf.sprintf
        "SELECT DISTINCT 'P6 violated: user 1 used one d_patients tuple more \
         than %d times within %d ticks' AS errorMessage FROM provenance p, \
         users u, clock c WHERE p.ts = u.ts AND u.uid = 1 AND p.irid = \
         'd_patients' AND p.ts > c.ts - %d GROUP BY p.itid HAVING \
         COUNT(DISTINCT p.ts * 1000000 + p.otid) > %d"
        ps.p6_max_uses ps.p6_window ps.p6_window ps.p6_max_uses;
  }

let all ?(params = default_params) ~n_patients () =
  [ p1 params; p2 params; p3 params; p4 params; p5 params ~n_patients; p6 params ]

let find ?params ~n_patients name =
  match List.find_opt (fun p -> p.name = name) (all ?params ~n_patients ()) with
  | Some p -> p
  | None -> invalid_arg ("unknown workload policy " ^ name)
