(** Policy unification (§4.2.2).

    Policies structurally identical except for a single literal constant
    are consolidated into one policy that joins a generated constants
    table and groups by the constant (Example 4.6), making evaluation
    cost constant in the number of unified policies (Fig. 5). *)

open Relational

type group = {
  policy : Policy.t;  (** the unified replacement policy *)
  members : Policy.t list;  (** original policies it subsumes *)
  constants_table : string;  (** the generated [dl_constants_<k>] table *)
}

type outcome = { policies : Policy.t list; groups : group list }

(** Alias under which the constants table is joined (["dl_consts"]). *)
val constants_alias : string

(** Group policies by shape and unify the eligible groups; creates (or
    refreshes) the constants tables in the catalog. Policies that do not
    unify are returned unchanged, in order. *)
val run : Catalog.t -> is_log:(string -> bool) -> Policy.t list -> outcome
