(** Usage-based data pricing (§2): Factual-style "pay for what you
    touched" billing computed from the [provenance] and [users] logs. *)

open Relational

type rate = { relation : string; per_use : float }

type line = { relation : string; uses : int; amount : float }

type bill = {
  uid : int;
  since : int;  (** exclusive *)
  until : int;  (** inclusive *)
  lines : line list;
  total : float;
}

(** A never-firing policy whose absolute witness retains the last
    [window] ticks of provenance and users tuples — register it with
    {!Engine.add_policy} so log compaction keeps the billing window
    alive. *)
val retention_policy : window:int -> string

(** Tuple-use counts per input relation for [uid] in [(since, until]]. *)
val usage_counts :
  Database.t -> uid:int -> since:int -> until:int -> (string * int) list

val bill :
  Database.t -> uid:int -> since:int -> until:int -> rates:rate list -> bill

val pp_bill : Format.formatter -> bill -> unit
