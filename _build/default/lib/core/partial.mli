(** Partial policies for interleaved evaluation (§4.2.1).

    πS drops every reference to log relations outside the available set
    [S]; by Lemma 4.4, π ⇒ πS for interleavable policies, so an empty πS
    proves π satisfied. Before dropping, WHERE conjuncts are {e
    saturated} through column-equality classes so that, e.g., a window
    predicate written on a removed relation's timestamp survives on an
    equated kept timestamp (the paper's Example 4.5 P2c). *)

open Relational

(** Derive equality-implied conjunct variants (exposed for tests). *)
val saturate : Ast.expr list -> Ast.expr list

(** πS of one SELECT. [available] holds lowercased log relation names. *)
val of_select :
  is_log:(string -> bool) -> available:string list -> Ast.select -> Ast.select

val of_query :
  is_log:(string -> bool) -> available:string list -> Ast.query -> Ast.query

(** Drop HAVING everywhere: the monotone SPJ core used to prune
    non-monotone (but grouped) policies. *)
val strip_having : Ast.query -> Ast.query

(** Relation names (lowercased) of the top-level FROM table items in slot
    order ([None] for subqueries); interprets source-tid tracking. *)
val from_slot_relations : Ast.query -> string option list
