(** Violation diagnosis and remediation advice.

    §6 names "help[ing] users debug queries that are deemed non-compliant"
    as open work, and the authors' earlier demo ("The Power of Data Use
    Management in Action") showed an interface that recommends
    alternative actions. This module implements that layer: given a
    rejected query and the violated policies, it explains {e why} each
    policy fired and proposes concrete remediations.

    The diagnosis is structural: it relates the policy's log relations to
    the features of the rejected query (which relations it joined,
    whether it aggregated, how many output tuples contributed) and the
    state of the usage log (how soon a sliding window clears). *)

open Relational

type suggestion = {
  policy : string;  (** violated policy name *)
  reason : string;  (** human-readable diagnosis *)
  actions : string list;  (** proposed remediations *)
}

let lc = Analysis.lc

(* Relations the query touches, from the schema log-generating analysis. *)
let touched_relations db query =
  List.sort_uniq String.compare
    (List.filter_map
       (fun row ->
         match row with
         | [| _; Value.Str irid; _; _ |] -> Some (lc irid)
         | _ -> None)
       (Usage_log.schema_rows db query))

let query_aggregates db query =
  List.exists
    (fun row -> match row with [| _; _; _; Value.Bool true |] -> true | _ -> false)
    (Usage_log.schema_rows db query)

(* The policy's sliding-window width, if it has one: the K of a
   normalized [x.ts > c.ts - K] predicate. *)
let window_of (p : Policy.t) : int option =
  match p.Policy.query with
  | Ast.Select s ->
    let clock_aliases =
      List.filter_map
        (fun (a, rel) -> if rel = Usage_log.clock_relation then Some a else None)
        (Analysis.table_occurrences s)
    in
    List.find_map
      (fun c ->
        match c with
        | Ast.Binop
            ( (Ast.Gt | Ast.Ge),
              Ast.Col (Some _, _),
              Ast.Binop (Ast.Sub, Ast.Col (Some q, _), Ast.Lit (Value.Int k)) )
          when List.mem (lc q) clock_aliases ->
          Some k
        | _ -> None)
      (Ast.conjuncts_opt s.Ast.where)
  | Ast.Union _ -> None

(* Log relations the policy constrains. *)
let constrained_relations (p : Policy.t) : string list =
  match p.Policy.query with
  | Ast.Select s ->
    List.filter_map
      (fun c ->
        match c with
        | Ast.Binop (Ast.Eq, Ast.Col (_, col), Ast.Lit (Value.Str rel))
          when lc col = "irid" ->
          Some (lc rel)
        | _ -> None)
      (Ast.conjuncts_opt s.Ast.where)
  | Ast.Union _ -> []

let has_aggregate_check (p : Policy.t) =
  match p.Policy.query with
  | Ast.Select s ->
    List.exists
      (fun c ->
        match c with
        | Ast.Binop (Ast.Eq, Ast.Col (_, col), Ast.Lit (Value.Bool true))
          when lc col = "agg" ->
          true
        | _ -> false)
      (Ast.conjuncts_opt s.Ast.where)
  | Ast.Union _ -> false

let advise (db : Database.t) ~(query : Ast.query) (violated : Policy.t list) :
    suggestion list =
  let touched = touched_relations db query in
  let aggregated = query_aggregates db query in
  List.map
    (fun (p : Policy.t) ->
      let constrained = constrained_relations p in
      let overlapping = List.filter (fun r -> List.mem r touched) constrained in
      let window = window_of p in
      let uses_provenance = List.mem "provenance" p.Policy.log_rels in
      let uses_schema = List.mem "schema" p.Policy.log_rels in
      let reason, actions =
        if has_aggregate_check p && aggregated then
          ( Printf.sprintf
              "the query aggregates over %s, which this policy prohibits"
              (String.concat ", " overlapping),
            [
              "remove the aggregation (GROUP BY / COUNT / SUM / AVG) over the \
               restricted columns";
              "query the restricted data standalone and aggregate only your \
               own data";
            ] )
        else if uses_schema && List.length overlapping > 0 && List.length touched > 1
        then
          ( Printf.sprintf
              "the query combines the restricted relation %s with: %s"
              (String.concat ", " overlapping)
              (String.concat ", "
                 (List.filter (fun r -> not (List.mem r overlapping)) touched)),
            [
              Printf.sprintf "query %s on its own, without joins or unions"
                (String.concat ", " overlapping);
              "acquire a license tier that permits combining this dataset";
            ] )
        else
          match window with
          | Some w ->
            ( Printf.sprintf
                "a sliding-window limit over the last %d ticks is exhausted" w,
              [
                Printf.sprintf
                  "wait up to %d ticks for earlier activity to age out of the \
                   window" w;
                "spread the workload across the window or reduce its rate";
              ] )
          | None ->
            if uses_provenance then
              ( "the shape of the query's result violates a per-result \
                 restriction (e.g. too few or too many contributing tuples)",
                [
                  "coarsen the query so more tuples contribute to each answer \
                   (e.g. aggregate over larger groups)";
                  "narrow the query so it derives less of the restricted data";
                ] )
            else
              ( "the query conflicts with a usage restriction on the touched \
                 relations",
                [ "consult the policy text and adjust the query" ] )
      in
      { policy = p.Policy.name; reason; actions })
    violated

let pp_suggestion ppf (s : suggestion) =
  Format.fprintf ppf "%s: %s@." s.policy s.reason;
  List.iter (fun a -> Format.fprintf ppf "  - %s@." a) s.actions
