(** Absolute-witness computation for log compaction (§4.1.2).

    For a policy π and log relation [Ri], an {e absolute witness} is a
    subset of [Ri] sufficient to evaluate π at every future time
    (Def. 4.1; the produced witnesses guarantee evaluations from the next
    timestamp on, which is when compaction takes effect). Built per
    Lemmas 4.1–4.3 with Algorithm 2's recursion into union branches and
    FROM subqueries. *)

open Relational

type t =
  | Keep_all  (** no compaction possible: retain the whole relation *)
  | Queries of Ast.select list
      (** union of witness queries; FROM slot 0 of each is the target
          occurrence of the relation, so executing with source-tid
          tracking marks the retained tuples *)

val merge : t -> t -> t

(** Witnesses of every log relation occurring in one SELECT. [now] is the
    compaction time, frozen into clock predicates per Lemma 4.3. *)
val for_select :
  is_log:(string -> bool) -> now:int -> Ast.select -> (string * t) list

(** Witnesses over a whole query (Algorithm 2). *)
val for_query :
  is_log:(string -> bool) -> now:int -> Ast.query -> (string * t) list

val for_policy :
  is_log:(string -> bool) -> now:int -> Policy.t -> (string * t) list
