(** Absolute-witness computation for log compaction (§4.1.2).

    For a policy π and a log relation [Ri], an {e absolute witness} is a
    subset of [Ri] sufficient to evaluate π now and at every future time
    (Def. 4.1). Witnesses are built as queries over the current log
    following Lemmas 4.1–4.3:

    - Lemma 4.1 (full queries / policies with HAVING): semijoin-reduce
      [Ri] against its ts-equijoin neighborhood and the policy's database
      relations, keeping the applicable predicates.
    - Lemma 4.2 (Boolean policies): additionally keep only one tuple per
      combination of [Ri]'s join attributes, via [DISTINCT ON].
    - Lemma 4.3 (clock): normalize clock predicates to [c.ts op expr],
      drop lower bounds on the clock, and freeze upper bounds at
      [currenttime + 1]. Policies with an unsupported clock predicate
      (e.g. [!=]) are not compacted at all.

    Algorithm 2's recursion handles FROM subqueries: each subquery is
    compacted separately as a full query, and the witnesses are unioned.

    The produced witness queries always place the target occurrence of
    [Ri] at FROM slot 0, so the engine can execute them in source-tid
    tracking mode and mark the retained tuples in place. *)

open Relational

type t =
  | Keep_all  (** no compaction possible: retain the whole relation *)
  | Queries of Ast.select list
      (** union of witness queries; slot 0 is the target occurrence *)

let lc = Analysis.lc

let merge a b =
  match a, b with
  | Keep_all, _ | _, Keep_all -> Keep_all
  | Queries x, Queries y -> Queries (x @ y)

(* Clock predicate normalization (Lemma 4.3) ----------------------------- *)

let flip = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

(* Isolate [clk.ts op expr] from a comparison conjunct; the clock side may
   be wrapped in +/- arithmetic. Returns [None] when the predicate cannot
   be normalized (which disables compaction for the whole policy). *)
let isolate_clock ~(clock_aliases : string list) (conj : Ast.expr) :
    [ `NoClock | `Clock of Ast.binop * Ast.expr | `Unsupported ] =
  let mentions e = Analysis.expr_refs_any_alias e clock_aliases in
  if not (mentions conj) then `NoClock
  else
    let rec isolate op lhs rhs =
      (* invariant: [lhs] mentions the clock, [rhs] does not *)
      match lhs with
      | Ast.Col (Some q, c) when List.mem (lc q) clock_aliases && lc c = "ts" ->
        Some (op, rhs)
      | Ast.Binop (Ast.Add, a, b) when mentions a && not (mentions b) ->
        isolate op a (Ast.Binop (Ast.Sub, rhs, b))
      | Ast.Binop (Ast.Add, a, b) when mentions b && not (mentions a) ->
        isolate op b (Ast.Binop (Ast.Sub, rhs, a))
      | Ast.Binop (Ast.Sub, a, b) when mentions a && not (mentions b) ->
        isolate op a (Ast.Binop (Ast.Add, rhs, b))
      | Ast.Binop (Ast.Sub, a, b) when mentions b && not (mentions a) ->
        isolate (flip op) b (Ast.Binop (Ast.Sub, a, rhs))
      | _ -> None
    in
    match conj with
    | Ast.Binop (((Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), l, r) -> (
      let attempt =
        if mentions l && not (mentions r) then isolate op l r
        else if mentions r && not (mentions l) then isolate (flip op) r l
        else None
      in
      match attempt with Some (op, e) -> `Clock (op, e) | None -> `Unsupported)
    | _ -> `Unsupported

(* Apply Lemma 4.3's transformation at compaction time [now]. Returns the
   rewritten conjuncts (possibly none, when the predicate is dropped). *)
let freeze_clock_predicate ~now (op : Ast.binop) (e : Ast.expr) : Ast.expr list =
  let frontier = Ast.Lit (Value.Int (now + 1)) in
  match op with
  | Ast.Gt | Ast.Ge -> []
  | Ast.Lt -> [ Ast.Binop (Ast.Lt, frontier, e) ]
  | Ast.Le -> [ Ast.Binop (Ast.Le, frontier, e) ]
  | Ast.Eq -> [ Ast.Binop (Ast.Le, frontier, e) ]
  | _ -> assert false

(* Witnesses for one SELECT ------------------------------------------------ *)

(* Compute, for every log relation occurring in [s], its witness queries.
   Returns an association list keyed by (lowercased) log relation name. *)
let for_select ~(is_log : string -> bool) ~(now : int) (s : Ast.select) :
    (string * t) list =
  let occs = Analysis.table_occurrences s in
  let clock_aliases =
    List.filter_map
      (fun (a, rel) -> if rel = Usage_log.clock_relation then Some a else None)
      occs
  in
  let log_occs = List.filter (fun (_, rel) -> is_log rel) occs in
  let db_items =
    List.filter
      (fun fi ->
        match fi with
        | Ast.From_table { name; _ } ->
          let rel = lc name in
          (not (is_log rel)) && rel <> Usage_log.clock_relation
        | Ast.From_subquery _ -> false)
      s.from
  in
  if log_occs = [] then []
  else begin
    (* 1. Normalize clock predicates. *)
    let conjuncts = Ast.conjuncts_opt s.where in
    let normalized =
      List.map
        (fun c ->
          match c with
          | Ast.Binop (Ast.Neq, _, _)
            when Analysis.expr_refs_any_alias c clock_aliases ->
            `Unsupported
          | _ -> (
            match isolate_clock ~clock_aliases c with
            | `NoClock -> `Plain c
            | `Clock (op, e) -> `Clock (op, e)
            | `Unsupported -> `Unsupported))
        conjuncts
    in
    if List.mem `Unsupported normalized then
      (* Paper: no compaction for policies with unsupported clock use. *)
      List.map (fun (_, rel) -> (rel, Keep_all)) log_occs
    else begin
      let plain =
        List.filter_map (function `Plain c -> Some c | _ -> None) normalized
      in
      let clock_derived =
        List.concat_map
          (function
            | `Clock (op, e) -> List.map (fun c -> (c, true)) (freeze_clock_predicate ~now op e)
            | _ -> [])
          normalized
      in
      let tagged = List.map (fun c -> (c, false)) plain @ clock_derived in
      (* 2. ts-equijoin neighborhood over log occurrences. *)
      let log_aliases = List.map fst log_occs in
      let ts_edges =
        List.filter_map
          (fun c ->
            match c with
            | Ast.Binop (Ast.Eq, Ast.Col (Some qa, ca), Ast.Col (Some qb, cb))
              when lc ca = "ts" && lc cb = "ts"
                   && List.mem (lc qa) log_aliases
                   && List.mem (lc qb) log_aliases ->
              Some (Ast.Binop (Ast.Eq, Ast.Col (Some (lc qa), "ts"),
                               Ast.Col (Some (lc qb), "ts")))
            | _ -> None)
          plain
      in
      let classes = Analysis.Eq_classes.of_conjuncts ts_edges in
      let neighborhood target_alias =
        List.filter
          (fun (a, _) ->
            a <> target_alias
            && Analysis.Eq_classes.same classes (target_alias, "ts") (a, "ts"))
          log_occs
      in
      (* Aliases kept for a given target, and their FROM items. *)
      let from_item_of alias =
        List.find
          (fun fi -> lc (Ast.from_item_alias fi) = alias)
          s.from
      in
      let boolean = s.having = None && s.group_by = [] in
      let witness_for (target_alias, _rel) : Ast.select =
        let kept_aliases =
          target_alias
          :: List.map fst (neighborhood target_alias)
          @ List.map (fun fi -> lc (Ast.from_item_alias fi)) db_items
        in
        let applicable =
          List.filter
            (fun (c, _) ->
              List.for_all
                (fun q ->
                  match q with
                  | Some q -> List.mem (lc q) kept_aliases
                  | None -> true)
                (Ast.expr_qualifiers c))
            tagged
        in
        let where = Ast.conjoin (List.map fst applicable) in
        let from =
          from_item_of target_alias
          :: List.map (fun (a, _) -> from_item_of a) (neighborhood target_alias)
          @ db_items
        in
        let distinct =
          if not boolean then Ast.All
          else begin
            (* Lemma 4.2's X: attributes of the target occurring in join
               predicates; clock-derived predicates count as joins. *)
            let x = ref [] in
            List.iter
              (fun (c, from_clock) ->
                let quals =
                  List.filter_map (Option.map lc) (Ast.expr_qualifiers c)
                in
                let joins_elsewhere =
                  from_clock
                  || List.exists (fun q -> q <> target_alias) quals
                in
                if joins_elsewhere && List.mem target_alias quals then
                  Ast.iter_expr
                    (function
                      | Ast.Col (Some q, col) when lc q = target_alias ->
                        let e = Ast.Col (Some target_alias, col) in
                        if not (List.mem e !x) then x := e :: !x
                      | _ -> ())
                    c)
              applicable;
            match List.rev !x with
            | [] -> Ast.Distinct_on [ Ast.Lit (Value.Int 1) ]
            | xs -> Ast.Distinct_on xs
          end
        in
        {
          Ast.empty_select with
          distinct;
          items = [ Ast.Table_star target_alias ];
          from;
          where;
        }
      in
      (* One witness query per occurrence; self-joins union per relation. *)
      let by_rel = Hashtbl.create 4 in
      List.iter
        (fun (alias, rel) ->
          let w = Queries [ witness_for (alias, rel) ] in
          let cur = Option.value (Hashtbl.find_opt by_rel rel) ~default:(Queries []) in
          Hashtbl.replace by_rel rel (merge cur w))
        log_occs;
      Hashtbl.fold (fun rel w acc -> (rel, w) :: acc) by_rel []
    end
  end

(* Witnesses for a policy query, with Algorithm 2's recursion into union
   branches and FROM subqueries. *)
let rec for_query ~is_log ~now (q : Ast.query) : (string * t) list =
  let combine lists =
    List.fold_left
      (fun acc (rel, w) ->
        let cur = Option.value (List.assoc_opt rel acc) ~default:(Queries []) in
        (rel, merge cur w) :: List.remove_assoc rel acc)
      [] (List.concat lists)
  in
  match q with
  | Ast.Union { left; right; _ } ->
    combine [ for_query ~is_log ~now left; for_query ~is_log ~now right ]
  | Ast.Select s ->
    let sub =
      List.concat_map
        (function
          | Ast.From_subquery { query; _ } -> [ for_query ~is_log ~now query ]
          | Ast.From_table _ -> [])
        s.from
    in
    combine (for_select ~is_log ~now s :: sub)

let for_policy ~is_log ~now (p : Policy.t) : (string * t) list =
  for_query ~is_log ~now p.Policy.query
