(** Shared static-analysis helpers over policy ASTs.

    All policy rewrites (time-independence, witnesses, partial policies,
    unification) operate on {e qualified} queries: every column reference
    carries its table alias. {!qualify} resolves unqualified references
    once at policy-registration time so the rewrites can reason purely
    syntactically afterwards. *)

open Relational

let lc = String.lowercase_ascii

(* Output column names of a query (used to resolve through subqueries). *)
let rec output_columns (cat : Catalog.t) (q : Ast.query) : string list =
  match q with
  | Ast.Union { left; _ } -> output_columns cat left
  | Ast.Select s ->
    let sources = source_columns cat s.from in
    List.concat_map
      (function
        | Ast.Star -> List.concat_map snd sources
        | Ast.Table_star t -> (
          match List.assoc_opt (lc t) sources with
          | Some cols -> cols
          | None -> Errors.bind_error "unknown table or alias %S" t)
        | Ast.Sel_expr (e, alias) ->
          let name =
            match alias, e with
            | Some a, _ -> a
            | None, Ast.Col (_, c) -> c
            | None, Ast.Agg_call (agg, _, _) -> lc (Sql_print.agg_str agg)
            | None, _ -> "?column?"
          in
          [ name ])
      s.items

and source_columns cat (from : Ast.from_item list) : (string * string list) list =
  List.map
    (fun fi ->
      let alias = lc (Ast.from_item_alias fi) in
      match fi with
      | Ast.From_table { name; _ } ->
        (alias, Schema.column_names (Table.schema (Catalog.find cat name)))
      | Ast.From_subquery { query; _ } -> (alias, output_columns cat query))
    from

(* Qualify every column reference in a query with its source alias. *)
let rec qualify (cat : Catalog.t) (q : Ast.query) : Ast.query =
  match q with
  | Ast.Union { all; left; right } ->
    Ast.Union { all; left = qualify cat left; right = qualify cat right }
  | Ast.Select s ->
    let from =
      List.map
        (fun fi ->
          match fi with
          | Ast.From_subquery { query; alias } ->
            Ast.From_subquery { query = qualify cat query; alias }
          | Ast.From_table _ -> fi)
        s.from
    in
    let sources = source_columns cat from in
    let resolve name =
      let lname = lc name in
      let hits =
        List.filter (fun (_, cols) -> List.exists (fun c -> lc c = lname) cols) sources
      in
      match hits with
      | [ (alias, _) ] -> alias
      | [] -> Errors.bind_error "unknown column %S in policy" name
      | _ -> Errors.bind_error "ambiguous column %S in policy" name
    in
    let fix =
      Ast.map_expr (function
        | Ast.Col (None, name) -> Ast.Col (Some (resolve name), name)
        | e -> e)
    in
    Ast.Select
      {
        s with
        from;
        items =
          List.map
            (function
              | Ast.Sel_expr (e, a) -> Ast.Sel_expr (fix e, a)
              | it -> it)
            s.items;
        where = Option.map fix s.where;
        group_by = List.map fix s.group_by;
        having = Option.map fix s.having;
        order_by = List.map (fun (e, d) -> (fix e, d)) s.order_by;
      }

(* Does the expression reference the given (lowercased) alias? *)
let expr_refs_alias (e : Ast.expr) (alias : string) =
  List.exists
    (function Some q -> lc q = alias | None -> false)
    (Ast.expr_qualifiers e)

let expr_refs_any_alias (e : Ast.expr) (aliases : string list) =
  List.exists (fun a -> expr_refs_alias e a) aliases

(* FROM-table occurrences of a select: (lowercased alias, relation name). *)
let table_occurrences (s : Ast.select) : (string * string) list =
  List.filter_map
    (function
      | Ast.From_table { name; alias } ->
        Some (lc (Option.value alias ~default:name), lc name)
      | Ast.From_subquery _ -> None)
    s.from

(* Log-relation names (lowercased) referenced anywhere in a query,
   including within FROM subqueries. *)
let rec log_relations ~(is_log : string -> bool) (q : Ast.query) : string list =
  let add acc r = if List.mem r acc then acc else r :: acc in
  let of_select acc (s : Ast.select) =
    List.fold_left
      (fun acc fi ->
        match fi with
        | Ast.From_table { name; _ } when is_log (lc name) -> add acc (lc name)
        | Ast.From_table _ -> acc
        | Ast.From_subquery { query; _ } ->
          List.fold_left add acc (log_relations ~is_log query))
      acc s.from
  in
  match q with
  | Ast.Select s -> of_select [] s
  | Ast.Union { left; right; _ } ->
    List.fold_left add (log_relations ~is_log left) (log_relations ~is_log right)

(* Whether any FROM subquery (recursively) references a log relation. *)
let rec subquery_uses_log ~is_log (q : Ast.query) : bool =
  match q with
  | Ast.Union { left; right; _ } ->
    subquery_uses_log ~is_log left || subquery_uses_log ~is_log right
  | Ast.Select s ->
    List.exists
      (function
        | Ast.From_subquery { query; _ } -> log_relations ~is_log query <> []
        | Ast.From_table _ -> false)
      s.from

(* Union-find over (alias, column) pairs induced by the equality
   conjuncts of a WHERE clause; used for the time-independence test and
   neighborhood computation. *)
module Eq_classes = struct
  type t = (string * string, string * string) Hashtbl.t

  let rec find (t : t) x =
    match Hashtbl.find_opt t x with
    | None -> x
    | Some p when p = x -> x
    | Some p ->
      let root = find t p in
      Hashtbl.replace t x root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb

  let of_conjuncts (conjs : Ast.expr list) : t =
    let t : t = Hashtbl.create 16 in
    List.iter
      (function
        | Ast.Binop (Ast.Eq, Ast.Col (Some qa, ca), Ast.Col (Some qb, cb)) ->
          union t (lc qa, lc ca) (lc qb, lc cb)
        | _ -> ())
      conjs;
    t

  let same t a b = find t a = find t b
end
