(** Violation diagnosis and remediation advice — the §6 "help users debug
    non-compliant queries" direction, after the authors' demo paper.

    Given a rejected query and the violated policies (from
    {!Engine.last_violations}), produces a structural diagnosis — which
    restricted relations the query combined, whether it aggregated,
    whether a sliding window is exhausted — plus concrete remediations. *)

open Relational

type suggestion = {
  policy : string;  (** violated policy name *)
  reason : string;  (** human-readable diagnosis *)
  actions : string list;  (** proposed remediations *)
}

val advise : Database.t -> query:Ast.query -> Policy.t list -> suggestion list

val pp_suggestion : Format.formatter -> suggestion -> unit
