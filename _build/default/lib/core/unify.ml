(** Policy unification (§4.2.2).

    Policies that are structurally identical except for a single literal
    constant (e.g. one rate-limit policy per user group) are consolidated
    into one policy that joins against a generated constants table and
    groups by the constant — Example 4.6. Evaluation cost then stays
    constant in the number of unified policies (Fig. 5).

    Policies are grouped by their {e shape}: the query with every literal
    (and the error-message projection) replaced by a placeholder. A group
    unifies when its members' literal vectors differ in exactly one
    non-message position and the differing values share a type. *)

open Relational

type group = {
  policy : Policy.t;  (** the unified replacement policy *)
  members : Policy.t list;  (** original policies it subsumes *)
  constants_table : string;
}

type outcome = { policies : Policy.t list; groups : group list }

let placeholder = Value.Str "\x00dl_placeholder"

let constants_alias = "dl_consts"

(* The shape key of a policy query. *)
let shape_key (q : Ast.query) : string =
  let masked =
    List.fold_left
      (fun q (site : Ast.lit_site) ->
        Ast.query_map_literal q ~path:site.Ast.path ~f:(fun _ -> Ast.Lit placeholder))
      q (Ast.query_literals q)
  in
  Sql_print.query masked

let is_message_path (path : string) =
  (* Literal inside a top-level select item: path "q.i<k>..." *)
  String.length path > 3 && String.sub path 0 3 = "q.i"

(* Try to unify one shape-group of policies. *)
let unify_group (cat : Catalog.t) ~(is_log : string -> bool) ~(index : int)
    (ps : Policy.t list) : group option =
  match ps with
  | [] | [ _ ] -> None
  | first :: _ ->
    let sites = List.map (fun p -> Ast.query_literals p.Policy.query) ps in
    let nsites = List.length (List.hd sites) in
    if List.exists (fun s -> List.length s <> nsites) sites then None
    else begin
      (* Positions whose values differ across members. *)
      let differing =
        List.filter
          (fun i ->
            let vals =
              List.map (fun s -> (List.nth s i : Ast.lit_site).Ast.value) sites
            in
            match vals with
            | v :: vs -> not (List.for_all (Value.equal v) vs)
            | [] -> false)
          (List.init nsites (fun i -> i))
      in
      let differing_non_msg =
        List.filter
          (fun i -> not (is_message_path (List.nth (List.hd sites) i).Ast.path))
          differing
      in
      match differing_non_msg with
      | [ pos ] -> (
        let path = (List.nth (List.hd sites) pos).Ast.path in
        let values =
          List.map (fun s -> (List.nth s pos : Ast.lit_site).Ast.value) sites
        in
        match Value.type_of (List.hd values) with
        | None -> None
        | Some ty
          when List.for_all (fun v -> Value.type_of v = Some ty) values ->
          (* Create (or refresh) the constants table. *)
          let table_name = Printf.sprintf "dl_constants_%d" index in
          if Catalog.mem cat table_name then Catalog.drop cat table_name;
          let table =
            Catalog.create_table cat ~name:table_name
              ~schema:(Schema.make [ ("const", ty) ])
          in
          let seen = Hashtbl.create 8 in
          List.iter
            (fun v ->
              let k = Value.canonical_key v in
              if not (Hashtbl.mem seen k) then begin
                Hashtbl.add seen k ();
                ignore (Table.insert table [| v |])
              end)
            values;
          (* Rewrite the first member's query. *)
          let const_ref = Ast.Col (Some constants_alias, "const") in
          let q =
            Ast.query_map_literal first.Policy.query ~path ~f:(fun _ -> const_ref)
          in
          let q =
            match q with
            | Ast.Select s ->
              let has_agg =
                s.having <> None
                || List.exists
                     (function
                       | Ast.Sel_expr (e, _) -> Ast.expr_has_agg e
                       | _ -> false)
                     s.items
              in
              Ast.Select
                {
                  s with
                  from =
                    s.from
                    @ [
                        Ast.From_table
                          { name = table_name; alias = Some constants_alias };
                      ];
                  group_by =
                    (if has_agg then s.group_by @ [ const_ref ] else s.group_by);
                }
            | q -> q
          in
          let message =
            Printf.sprintf "%s (unified over %d policies)" first.Policy.message
              (List.length ps)
          in
          (* Swap the error-message literal for the unified message. *)
          let q =
            match q with
            | Ast.Select ({ items = Ast.Sel_expr (Ast.Lit (Value.Str _), a) :: rest; _ } as s)
              ->
              Ast.Select
                {
                  s with
                  items = Ast.Sel_expr (Ast.Lit (Value.Str message), a) :: rest;
                }
            | q -> q
          in
          let policy =
            {
              (Policy.with_query ~is_log first q) with
              Policy.name = Printf.sprintf "unified_%d" index;
              message;
            }
          in
          Some { policy; members = ps; constants_table = table_name }
        | Some _ -> None)
      | _ -> None
    end

(* Run unification over a policy set. Policies that do not unify are
   returned unchanged. *)
let run (cat : Catalog.t) ~(is_log : string -> bool) (policies : Policy.t list) :
    outcome =
  let by_shape = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun p ->
      let key = shape_key p.Policy.query in
      match Hashtbl.find_opt by_shape key with
      | Some cell -> cell := p :: !cell
      | None ->
        Hashtbl.add by_shape key (ref [ p ]);
        order := key :: !order)
    policies;
  let counter = ref 0 in
  let groups = ref [] in
  let out = ref [] in
  List.iter
    (fun key ->
      let members = List.rev !(Hashtbl.find by_shape key) in
      let idx = !counter in
      incr counter;
      match unify_group cat ~is_log ~index:idx members with
      | Some g ->
        groups := g :: !groups;
        out := g.policy :: !out
      | None -> out := List.rev_append (List.rev members) !out)
    (List.rev !order);
  { policies = List.rev !out; groups = List.rev !groups }
