(** Time-independent policy rewriting (§4.1.1).

    A time-independent policy holds on the whole log iff it holds on the
    current increment, because every past prefix was already checked. The
    rewriting [π → π_ind] adds a [clock] atom and pins one log [ts] to
    the current time; combined with the ts-equijoin requirement this
    restricts evaluation to the increment, and makes the policy's log
    witnesses empty (Example 4.4), so nothing need ever be stored for it. *)

open Relational

let clock_alias = "dl_clk"

(* Rewrite a (qualified, time-independent) policy query. *)
let rewrite ~(is_log : string -> bool) (q : Ast.query) : Ast.query =
  let rewrite_select (s : Ast.select) : Ast.select =
    let log_aliases =
      List.filter_map
        (fun (alias, rel) -> if is_log rel then Some alias else None)
        (Analysis.table_occurrences s)
    in
    match log_aliases with
    | [] -> s
    | a0 :: _ ->
      (* All log ts attributes are already equated (the policy passed the
         time-independence test), so pinning one representative to the
         clock pins them all. *)
      let clock_item =
        Ast.From_table { name = Usage_log.clock_relation; alias = Some clock_alias }
      in
      let pin =
        Ast.Binop
          (Ast.Eq, Ast.Col (Some a0, "ts"), Ast.Col (Some clock_alias, "ts"))
      in
      {
        s with
        from = s.from @ [ clock_item ];
        where = Ast.conjoin (Ast.conjuncts_opt s.where @ [ pin ]);
      }
  in
  match q with
  | Ast.Select s -> Ast.Select (rewrite_select s)
  | Ast.Union _ as u ->
    (* Union policies: rewrite each branch. *)
    let rec go = function
      | Ast.Select s -> Ast.Select (rewrite_select s)
      | Ast.Union { all; left; right } -> Ast.Union { all; left = go left; right = go right }
    in
    go u

let apply ~is_log (p : Policy.t) : Policy.t =
  if p.Policy.time_independent && not p.Policy.ti_rewritten then
    { p with Policy.query = rewrite ~is_log p.Policy.query; ti_rewritten = true }
  else p
