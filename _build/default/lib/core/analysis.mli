(** Shared static-analysis helpers over policy ASTs.

    All policy rewrites operate on {e qualified} queries: every column
    reference carries its table alias. {!qualify} resolves unqualified
    references once at registration time so the rewrites can reason
    purely syntactically afterwards. *)

open Relational

(** [String.lowercase_ascii]. *)
val lc : string -> string

(** Output column names of a query (resolving through subqueries).
    @raise Errors.Sql_error on unknown aliases. *)
val output_columns : Catalog.t -> Ast.query -> string list

(** Qualify every column reference with its source alias.
    @raise Errors.Sql_error on unknown or ambiguous columns. *)
val qualify : Catalog.t -> Ast.query -> Ast.query

(** Does the expression reference the given (lowercased) alias? *)
val expr_refs_alias : Ast.expr -> string -> bool

val expr_refs_any_alias : Ast.expr -> string list -> bool

(** FROM-table occurrences of a select: (lowercased alias, lowercased
    relation name) pairs; subqueries excluded. *)
val table_occurrences : Ast.select -> (string * string) list

(** Log-relation names (lowercased) referenced anywhere, including within
    FROM subqueries. *)
val log_relations : is_log:(string -> bool) -> Ast.query -> string list

(** Does any FROM subquery (recursively) reference a log relation? *)
val subquery_uses_log : is_log:(string -> bool) -> Ast.query -> bool

(** Union-find over (alias, column) pairs induced by the equality
    conjuncts of a WHERE clause; drives the time-independence test,
    neighborhood computation and predicate saturation. *)
module Eq_classes : sig
  type t

  val of_conjuncts : Ast.expr list -> t
  val find : t -> string * string -> string * string
  val union : t -> string * string -> string * string -> unit
  val same : t -> string * string -> string * string -> bool
end
