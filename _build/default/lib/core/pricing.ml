(** Usage-based data pricing (§2).

    The paper observes that DataLawyer's usage log can drive usage-based
    pricing — Factual-style "pay for what you touched" schemes. This
    module computes a bill from the [provenance] and [users] logs: each
    provenance record is one {e tuple use} of an input relation, priced
    per relation.

    Because log compaction deletes tuples no policy needs, a deployment
    that bills from the log must also {e retain} it for the billing
    window. {!retention_policy} produces a policy that can never fire
    (its threshold is astronomically large) but whose absolute witness
    keeps every provenance/users tuple of the window alive — pricing thus
    reuses the enforcement machinery instead of bypassing it. *)

open Relational

type rate = { relation : string; per_use : float }

type line = { relation : string; uses : int; amount : float }

type bill = { uid : int; since : int; until : int; lines : line list; total : float }

(* A never-firing policy whose witness retains the last [window] ticks of
   provenance and users tuples. Register it under any name with
   [Engine.add_policy]. *)
let retention_policy ~(window : int) : string =
  Printf.sprintf
    "SELECT DISTINCT 'retention window' AS errorMessage FROM provenance p, \
     users u, clock c WHERE p.ts = u.ts AND p.ts > c.ts - %d HAVING \
     COUNT(DISTINCT p.itid) > 1000000000"
    window

(* Tuple-use counts per input relation for [uid] in (since, until]. *)
let usage_counts (db : Database.t) ~(uid : int) ~(since : int) ~(until : int) :
    (string * int) list =
  let sql =
    Printf.sprintf
      "SELECT p.irid, COUNT(*) AS uses FROM provenance p, users u WHERE p.ts \
       = u.ts AND u.uid = %d AND p.ts > %d AND p.ts <= %d GROUP BY p.irid"
      uid since until
  in
  List.filter_map
    (function
      | [ Value.Str relation; Value.Int uses ] -> Some (relation, uses)
      | _ -> None)
    (Database.rows db sql)

let bill (db : Database.t) ~(uid : int) ~(since : int) ~(until : int)
    ~(rates : rate list) : bill =
  let counts = usage_counts db ~uid ~since ~until in
  let lines =
    List.filter_map
      (fun { relation; per_use } ->
        match
          List.find_opt (fun (r, _) -> String.lowercase_ascii r = String.lowercase_ascii relation) counts
        with
        | Some (_, uses) when uses > 0 ->
          Some { relation; uses; amount = float_of_int uses *. per_use }
        | _ -> None)
      rates
  in
  {
    uid;
    since;
    until;
    lines;
    total = List.fold_left (fun acc l -> acc +. l.amount) 0. lines;
  }

let pp_bill ppf (b : bill) =
  Format.fprintf ppf "bill for uid %d, ticks (%d, %d]:@." b.uid b.since b.until;
  List.iter
    (fun l ->
      Format.fprintf ppf "  %-16s %6d uses  $%8.4f@." l.relation l.uses l.amount)
    b.lines;
  Format.fprintf ppf "  %-16s %17s $%8.4f" "total" "" b.total
