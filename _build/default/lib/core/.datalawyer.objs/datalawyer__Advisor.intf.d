lib/core/advisor.mli: Ast Database Format Policy Relational
