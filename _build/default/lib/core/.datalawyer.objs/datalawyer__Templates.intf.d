lib/core/templates.mli:
