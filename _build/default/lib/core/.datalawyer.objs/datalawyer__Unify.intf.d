lib/core/unify.mli: Catalog Policy Relational
