lib/core/engine.mli: Ast Database Executor Policy Relational Stats Unify Usage_log Value
