lib/core/usage_log.mli: Ast Database Relational Ty Value
