lib/core/witness.mli: Ast Policy Relational
