lib/core/analysis.ml: Ast Catalog Errors Hashtbl List Option Relational Schema Sql_print String Table
