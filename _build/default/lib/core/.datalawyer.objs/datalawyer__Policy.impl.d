lib/core/policy.ml: Analysis Ast Catalog Database Executor Format List Parser Printf Relational Sql_print Usage_log Value
