lib/core/unify.ml: Ast Catalog Hashtbl List Policy Printf Relational Schema Sql_print String Table Value
