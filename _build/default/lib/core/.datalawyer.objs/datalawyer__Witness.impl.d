lib/core/witness.ml: Analysis Ast Hashtbl List Option Policy Relational Usage_log Value
