lib/core/templates.ml: Buffer List Option Printf String
