lib/core/analysis.mli: Ast Catalog Relational
