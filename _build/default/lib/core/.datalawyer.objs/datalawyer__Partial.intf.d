lib/core/partial.mli: Ast Relational
