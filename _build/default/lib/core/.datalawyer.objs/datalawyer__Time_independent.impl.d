lib/core/time_independent.ml: Analysis Ast List Policy Relational Usage_log
