lib/core/policy.mli: Ast Catalog Database Format Relational
