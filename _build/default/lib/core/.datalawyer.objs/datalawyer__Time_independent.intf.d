lib/core/time_independent.mli: Ast Policy Relational
