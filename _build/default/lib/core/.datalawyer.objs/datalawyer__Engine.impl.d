lib/core/engine.ml: Analysis Array Ast Catalog Database Errors Executor Hashtbl List Option Parser Partial Policy Relational Row Stats String Table Time_independent Unify Usage_log Value Witness
