lib/core/pricing.ml: Database Format List Printf Relational String Value
