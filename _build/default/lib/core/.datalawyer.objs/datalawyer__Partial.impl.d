lib/core/partial.ml: Analysis Ast List Relational
