lib/core/advisor.ml: Analysis Ast Database Format List Policy Printf Relational String Usage_log Value
