lib/core/usage_log.ml: Ast Catalog Database Errors Executor Hashtbl List Option Relational Row Schema Sql_print String Table Ty Value
