lib/core/pricing.mli: Database Format Relational
