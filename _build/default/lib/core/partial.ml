(** Partial policies for interleaved evaluation (§4.2.1).

    Given a subset [S] of usage-log relations whose increments have been
    generated, the partial policy πS drops every reference to log
    relations outside [S]: their FROM occurrences, the WHERE conjuncts
    and GROUP BY expressions mentioning them, and the HAVING clause if it
    mentions them. By Lemma 4.4, for a monotone (interleavable) policy
    π ⇒ πS, so πS returning the empty set proves π satisfied and lets the
    engine skip both the full evaluation and the remaining log-generating
    functions. *)

open Relational

let lc = Analysis.lc

(* Saturate a conjunct list with predicates implied by column equalities:
   if [a.x = b.y] and [a.x > e] are conjuncts, add [b.y > e]. This keeps
   sliding-window predicates alive in partial policies even when the
   window was written on a removed relation's timestamp (the paper's
   Example 4.5 keeps [u.ts > c.ts - w] in P2c for the same reason). Each
   derived conjunct substitutes one column for one of its equality-class
   peers; a single round suffices because equality classes are already
   transitive. *)
let saturate (conjuncts : Ast.expr list) : Ast.expr list =
  let classes = Analysis.Eq_classes.of_conjuncts conjuncts in
  (* Collect the members of each class. *)
  let members : ((string * string) * (string * string) list) list =
    let all = ref [] in
    List.iter
      (fun c ->
        Ast.iter_expr
          (function
            | Ast.Col (Some q, col) ->
              let key = (lc q, lc col) in
              if not (List.mem key !all) then all := key :: !all
            | _ -> ())
          c)
      conjuncts;
    List.map
      (fun key ->
        let root = Analysis.Eq_classes.find classes key in
        ( key,
          List.filter
            (fun k -> k <> key && Analysis.Eq_classes.find classes k = root)
            !all ))
      !all
  in
  let subst (qc : string * string) (qc' : string * string) e =
    Ast.map_expr
      (function
        | Ast.Col (Some q, col) when (lc q, lc col) = qc ->
          Ast.Col (Some (fst qc'), snd qc')
        | e -> e)
      e
  in
  let nontrivial = function
    | Ast.Binop (Ast.Eq, Ast.Col (Some q1, c1), Ast.Col (Some q2, c2)) ->
      (lc q1, lc c1) <> (lc q2, lc c2)
    | _ -> true
  in
  let derived =
    List.concat_map
      (fun c ->
        match c with
        | _ when Ast.expr_has_agg c -> []
        | _ ->
          let cols = ref [] in
          Ast.iter_expr
            (function
              | Ast.Col (Some q, col) ->
                let key = (lc q, lc col) in
                if not (List.mem key !cols) then cols := key :: !cols
              | _ -> ())
            c;
          List.concat_map
            (fun key ->
              match List.assoc_opt key members with
              | Some peers ->
                List.filter nontrivial (List.map (fun peer -> subst key peer c) peers)
              | None -> [])
            !cols)
      conjuncts
  in
  (* Dedupe structurally. *)
  List.fold_left
    (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
    conjuncts derived

(* πS for a qualified select. [available] holds lowercased log relation
   names in S; [is_log] classifies relation names. *)
let of_select ~(is_log : string -> bool) ~(available : string list)
    (s : Ast.select) : Ast.select =
  let removed_aliases =
    List.filter_map
      (fun (alias, rel) ->
        if is_log rel && not (List.mem rel available) then Some alias else None)
      (Analysis.table_occurrences s)
  in
  if removed_aliases = [] then s
  else begin
    let keeps_expr e = not (Analysis.expr_refs_any_alias e removed_aliases) in
    let from =
      List.filter
        (fun fi -> not (List.mem (lc (Ast.from_item_alias fi)) removed_aliases))
        s.from
    in
    {
      s with
      from;
      where =
        Ast.conjoin (List.filter keeps_expr (saturate (Ast.conjuncts_opt s.where)));
      group_by = List.filter keeps_expr s.group_by;
      having =
        (match s.having with
        | Some h when keeps_expr h -> Some h
        | _ -> None);
    }
  end

let of_query ~is_log ~available (q : Ast.query) : Ast.query =
  let rec go = function
    | Ast.Select s -> Ast.Select (of_select ~is_log ~available s)
    | Ast.Union { all; left; right } ->
      Ast.Union { all; left = go left; right = go right }
  in
  go q

(* The HAVING-stripped SPJ core of a query, used to prune non-monotone
   (but grouped) policies during interleaved evaluation: the core is
   monotone, and when it is empty there are no groups for HAVING to
   accept. *)
let strip_having (q : Ast.query) : Ast.query =
  let rec go = function
    | Ast.Select s -> Ast.Select { s with Ast.having = None }
    | Ast.Union { all; left; right } ->
      Ast.Union { all; left = go left; right = go right }
  in
  go q

(* Relation names (lowercased) of the top-level FROM table items, in slot
   order — used to interpret source-tid tracking results. *)
let from_slot_relations (q : Ast.query) : string option list =
  match q with
  | Ast.Select s ->
    List.map
      (function
        | Ast.From_table { name; _ } -> Some (lc name)
        | Ast.From_subquery _ -> None)
      s.from
  | Ast.Union _ -> []
