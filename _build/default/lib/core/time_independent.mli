(** Time-independent policy rewriting (§4.1.1).

    A time-independent policy holds on the whole log iff it holds on the
    current increment, because every past prefix was already checked. The
    rewriting adds a [clock] atom and pins one log [ts] to the current
    time; combined with the ts-equijoin requirement this restricts
    evaluation to the increment and makes the policy's witnesses empty
    (Example 4.4), so nothing need ever be stored for it. *)

open Relational

(** Alias used for the injected clock atom. *)
val clock_alias : string

(** Rewrite a (qualified, time-independent) query. *)
val rewrite : is_log:(string -> bool) -> Ast.query -> Ast.query

(** Apply the rewriting when the policy is classified time-independent
    and not already rewritten; otherwise identity. *)
val apply : is_log:(string -> bool) -> Policy.t -> Policy.t
