(* Unit tests for the static-analysis helpers behind the policy rewrites. *)

open Relational
open Datalawyer
open Test_support

let test_qualify () =
  let db = sample_db () in
  let q =
    Analysis.qualify (Database.catalog db)
      (Parser.query "SELECT name FROM emp WHERE salary > 100")
  in
  let sql = Sql_print.query q in
  Alcotest.(check bool) "projection qualified" true
    (Test_policy.contains_substring sql "emp.name");
  Alcotest.(check bool) "predicate qualified" true
    (Test_policy.contains_substring sql "emp.salary")

let test_qualify_through_alias () =
  let db = sample_db () in
  let q =
    Analysis.qualify (Database.catalog db)
      (Parser.query "SELECT name FROM emp e WHERE salary > 100")
  in
  Alcotest.(check bool) "uses alias, not table name" true
    (Test_policy.contains_substring (Sql_print.query q) "e.name")

let test_qualify_ambiguous () =
  let db = sample_db () in
  match
    Analysis.qualify (Database.catalog db)
      (Parser.query "SELECT id FROM emp a, emp b")
  with
  | exception Errors.Sql_error (Errors.Bind_error, _) -> ()
  | _ -> Alcotest.fail "ambiguous column must fail qualification"

let test_qualify_subquery () =
  let db = sample_db () in
  let q =
    Analysis.qualify (Database.catalog db)
      (Parser.query "SELECT x FROM (SELECT name AS x FROM emp) t WHERE x != 'q'")
  in
  let sql = Sql_print.query q in
  Alcotest.(check bool) "outer ref bound to subquery alias" true
    (Test_policy.contains_substring sql "t.x")

let test_output_columns () =
  let db = sample_db () in
  let cols sql = Analysis.output_columns (Database.catalog db) (Parser.query sql) in
  Alcotest.(check (list string)) "star" [ "id"; "name"; "dept"; "salary" ]
    (cols "SELECT * FROM emp");
  Alcotest.(check (list string)) "aliases and defaults"
    [ "k"; "salary"; "count"; "?column?" ]
    (cols "SELECT id AS k, salary, COUNT(*), 1 + 2 FROM emp GROUP BY id, salary")

let test_eq_classes () =
  let conjs =
    Ast.conjuncts (Parser.expr "a.ts = b.ts AND b.ts = c.ts AND a.x = a.x AND d.y = e.z")
  in
  let cls = Analysis.Eq_classes.of_conjuncts conjs in
  Alcotest.(check bool) "transitive" true
    (Analysis.Eq_classes.same cls ("a", "ts") ("c", "ts"));
  Alcotest.(check bool) "separate classes" false
    (Analysis.Eq_classes.same cls ("a", "ts") ("d", "y"));
  Alcotest.(check bool) "pair" true
    (Analysis.Eq_classes.same cls ("d", "y") ("e", "z"))

let test_log_relations () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore e;
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  let rels sql = List.sort compare (Analysis.log_relations ~is_log (Parser.query sql)) in
  Alcotest.(check (list string)) "direct" [ "schema"; "users" ]
    (rels "SELECT 1 FROM users u, schema s, emp e");
  Alcotest.(check (list string)) "through subquery" [ "provenance" ]
    (rels "SELECT 1 FROM (SELECT otid FROM provenance) q");
  Alcotest.(check bool) "subquery_uses_log" true
    (Analysis.subquery_uses_log ~is_log
       (Parser.query "SELECT 1 FROM (SELECT otid FROM provenance) q"));
  Alcotest.(check bool) "plain query has none" true
    (rels "SELECT 1 FROM emp" = [])

let test_saturation () =
  let conjs =
    Ast.conjuncts (Parser.expr "p.ts = u.ts AND p.ts > c.ts - 500 AND u.uid = 1")
  in
  let saturated = Partial.saturate conjs in
  let has e = List.exists (fun c -> Sql_print.expr c = e) saturated in
  Alcotest.(check bool) "window transferred to u.ts" true
    (has "u.ts > c.ts - 500");
  Alcotest.(check bool) "original kept" true (has "p.ts > c.ts - 500")

let suite =
  [
    tc "qualify" test_qualify;
    tc "qualify through alias" test_qualify_through_alias;
    tc "qualify ambiguous" test_qualify_ambiguous;
    tc "qualify subquery" test_qualify_subquery;
    tc "output columns" test_output_columns;
    tc "equality classes" test_eq_classes;
    tc "log relations" test_log_relations;
    tc "predicate saturation" test_saturation;
  ]
