(* Log compaction behaviour at the engine level: witness unions across
   policies, database-relation filters in witnesses, shrinking after
   policy removal, and Example 4.3's concrete shape. *)

open Relational
open Datalawyer
open Test_support

let mk_db () =
  db_of_script
    {|
    CREATE TABLE items (id INT, kind TEXT);
    CREATE TABLE memberships (uid INT, gid TEXT);
    INSERT INTO items VALUES (1, 'a'), (2, 'b');
    INSERT INTO memberships VALUES (1, 'student'), (2, 'student'), (3, 'staff')
    |}

let rate_policy ~name ~window =
  ( name,
    Printf.sprintf
      "SELECT DISTINCT '%s violated' FROM users u, clock c WHERE u.ts > c.ts \
       - %d HAVING COUNT(DISTINCT u.ts) > 1000"
      name window )

let submit e uid = ignore (Engine.submit e ~uid "SELECT id FROM items WHERE id = 1")

let test_union_of_witnesses () =
  (* Two window policies over users: the longer window wins. *)
  let db = mk_db () in
  let e = Engine.create db in
  let n1, s1 = rate_policy ~name:"narrow" ~window:3 in
  let n2, s2 = rate_policy ~name:"wide" ~window:12 in
  ignore (Engine.add_policy e ~name:n1 s1);
  ignore (Engine.add_policy e ~name:n2 s2);
  for _ = 1 to 30 do
    submit e 1
  done;
  let sz = Engine.log_size e "users" in
  (* retained ≈ the 12-tick window (plus frontier slack), not 3, not 30 *)
  Alcotest.(check bool) (Printf.sprintf "between windows (got %d)" sz) true
    (sz >= 10 && sz <= 14)

let test_removal_shrinks_log () =
  let db = mk_db () in
  let e = Engine.create db in
  let n2, s2 = rate_policy ~name:"wide" ~window:12 in
  let n1, s1 = rate_policy ~name:"narrow" ~window:3 in
  ignore (Engine.add_policy e ~name:n2 s2);
  ignore (Engine.add_policy e ~name:n1 s1);
  for _ = 1 to 20 do
    submit e 1
  done;
  let before = Engine.log_size e "users" in
  Engine.remove_policy e n2;
  for _ = 1 to 2 do
    submit e 1
  done;
  let after = Engine.log_size e "users" in
  Alcotest.(check bool)
    (Printf.sprintf "log shrank to the narrow window (%d -> %d)" before after)
    true
    (after < before && after <= 5)

let test_witness_filters_by_db_relation () =
  (* Only 'student' members' activity needs keeping (Example 4.2). *)
  let db = mk_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"students"
       "SELECT DISTINCT 'too many students' FROM users u, memberships m, \
        clock c WHERE u.uid = m.uid AND m.gid = 'student' AND u.ts > c.ts - \
        50 HAVING COUNT(DISTINCT u.uid) > 100");
  submit e 1;
  (* student *)
  submit e 3;
  (* staff *)
  submit e 2;
  (* student *)
  submit e 9;
  (* not a member at all *)
  let users = Database.table db "users" in
  let uids =
    List.sort Value.compare (List.map (fun r -> Row.cell r 1) (Table.rows users))
  in
  Alcotest.check (Alcotest.list value) "only student uids retained"
    [ i 1; i 2 ] uids

let test_example_4_3_shape () =
  (* The users witness of Example 4.3: membership join kept, time
     predicate frozen, schema in the neighborhood. *)
  let db = mk_db () in
  let e = Engine.create db in
  let p =
    Engine.add_policy e ~name:"p2b"
      "SELECT DISTINCT 'P2b' FROM users u, schema s, memberships g, clock c \
       WHERE u.ts = s.ts AND s.irid = 'items' AND u.uid = g.uid AND g.gid = \
       'student' AND u.ts > c.ts - 14 HAVING COUNT(DISTINCT u.uid) > 10"
  in
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  match List.assoc_opt "users" (Witness.for_policy ~is_log ~now:100 p) with
  | Some (Witness.Queries [ w ]) ->
    let sql = Sql_print.select w in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("witness contains " ^ needle) true
          (Test_policy.contains_substring sql needle))
      [ "u.*"; "schema"; "memberships"; "101" ];
    Alcotest.(check bool) "clock dropped" false
      (Test_policy.contains_substring sql "clock")
  | _ -> Alcotest.fail "expected a single users witness"

let test_ti_only_relations_never_generated () =
  (* A TI policy over schema and a window policy over users: provenance is
     never generated, schema is generated but never stored. *)
  let db = mk_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"ti"
       "SELECT DISTINCT 'no b items' FROM schema s, users u WHERE s.ts = \
        u.ts AND s.irid = 'nonexistent_kind'");
  let n1, s1 = rate_policy ~name:"narrow" ~window:3 in
  ignore (Engine.add_policy e ~name:n1 s1);
  for _ = 1 to 10 do
    submit e 1
  done;
  Alcotest.(check int) "schema never stored" 0 (Engine.log_size e "schema");
  Alcotest.(check int) "provenance untouched" 0 (Engine.log_size e "provenance");
  Alcotest.(check bool) "users window stored" true (Engine.log_size e "users" > 0)

let test_self_join_witness_union () =
  (* A time-dependent self-join policy: both occurrences' witnesses union,
     keeping rows that satisfy either side's predicates. *)
  let db = mk_db () in
  let e = Engine.create db in
  let p =
    Engine.add_policy e ~name:"sj"
      "SELECT DISTINCT 'x' FROM schema s1, schema s2, clock c WHERE s1.ts = \
       s2.ts AND s1.irid = 'items' AND s2.irid != 'items' AND s1.ts > c.ts - 9"
  in
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  (match List.assoc_opt "schema" (Witness.for_policy ~is_log ~now:50 p) with
  | Some (Witness.Queries qs) ->
    Alcotest.(check int) "two witness queries" 2 (List.length qs)
  | _ -> Alcotest.fail "expected queries");
  (* semantically: rows of both polarities inside the window are retained *)
  let sch = Database.table db "schema" in
  let add ts irid =
    ignore
      (Table.insert sch [| i ts; Value.Null; s irid; Value.Null; b false |])
  in
  add 45 "items";
  add 45 "other";
  add 30 "items";
  (* out of window *)
  Usage_log.set_clock db 50;
  let retained = Hashtbl.create 8 in
  (match List.assoc "schema" (Witness.for_policy ~is_log ~now:50 p) with
  | Witness.Queries qs ->
    List.iter
      (fun q ->
        let r =
          Executor.run
            ~opts:{ Executor.lineage = false; track_src = true }
            (Database.catalog db) (Ast.Select q)
        in
        List.iter
          (fun (row : Executor.row_out) ->
            List.iter
              (fun (slot, tid) -> if slot = 0 then Hashtbl.replace retained tid ())
              row.Executor.src_tids)
          r.Executor.out_rows)
      qs
  | Witness.Keep_all -> Alcotest.fail "unexpected Keep_all");
  Alcotest.(check int) "both in-window rows retained" 2 (Hashtbl.length retained)

let suite =
  [
    tc "union of witnesses across policies" test_union_of_witnesses;
    tc "policy removal shrinks the log" test_removal_shrinks_log;
    tc "witness filters via database relation" test_witness_filters_by_db_relation;
    tc "Example 4.3 witness shape" test_example_4_3_shape;
    tc "TI-only relations never stored" test_ti_only_relations_never_generated;
    tc "self-join witness union" test_self_join_witness_union;
  ]
