test/test_csv.ml: Alcotest Csv_io Database Errors Option Relational Schema Table Test_support Ty
