test/test_partial.ml: Alcotest Ast Catalog Database Datalawyer Engine Executor List Mimic Partial Policy Printf Relational Sql_print Stats String Table Test_policy Test_support Workload
