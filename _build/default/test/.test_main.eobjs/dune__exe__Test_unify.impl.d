test/test_unify.ml: Alcotest Catalog Database Datalawyer Engine Executor List Mimic Policy Printf Relational Sql_print Table Test_policy Test_support Unify
