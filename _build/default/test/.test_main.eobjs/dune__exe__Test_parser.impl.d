test/test_parser.ml: Alcotest Ast Errors Format List Parser Printexc Relational Sql_print Test_support Value
