test/test_policy.ml: Alcotest Catalog Database Datalawyer Engine Errors Mimic Policy Relational Sql_print String Test_support Time_independent Workload
