test/test_sql_features.ml: Alcotest Ast Database Datalawyer Engine Errors List Parser Relational Sql_print Test_support
