test/test_engine_strategies.ml: Alcotest Datalawyer Engine List Mimic Printf Relational Stats Test_support Workload
