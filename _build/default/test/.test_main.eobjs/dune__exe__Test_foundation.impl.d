test/test_foundation.ml: Alcotest Ast Csv_io Database Datalawyer Lineage List Mimic Option Parser Printf Relational Stats Test_support Ty Value Vec Workload
