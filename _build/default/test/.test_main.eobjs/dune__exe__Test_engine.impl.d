test/test_engine.ml: Alcotest Datalawyer Engine Executor List Mimic Relational String Test_support Workload
