test/test_analysis.ml: Alcotest Analysis Ast Catalog Database Datalawyer Engine Errors List Parser Partial Relational Sql_print Test_policy Test_support
