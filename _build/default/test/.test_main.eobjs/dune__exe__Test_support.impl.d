test/test_support.ml: Alcotest Database List Relational Value
