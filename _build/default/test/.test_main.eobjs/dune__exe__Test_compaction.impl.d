test/test_compaction.ml: Alcotest Ast Catalog Database Datalawyer Engine Executor Hashtbl List Printf Relational Row Sql_print Table Test_policy Test_support Usage_log Value Witness
