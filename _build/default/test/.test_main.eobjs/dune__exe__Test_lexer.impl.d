test/test_lexer.ml: Alcotest Array Errors Format Lexer Relational Test_support Token
