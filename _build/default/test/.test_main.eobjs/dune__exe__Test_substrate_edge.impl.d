test/test_substrate_edge.ml: Alcotest Catalog Database Errors Relational Row Schema Table Test_policy Test_support Ty Value
