test/test_usage_log.ml: Alcotest Array Database Datalawyer Engine List Parser Relational Test_support Usage_log Value
