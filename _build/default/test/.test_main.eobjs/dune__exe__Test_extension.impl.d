test/test_extension.ml: Advisor Alcotest Database Datalawyer Engine List Parser Policy Pricing Printf Relational Templates Test_policy Test_support Ty Usage_log Value
