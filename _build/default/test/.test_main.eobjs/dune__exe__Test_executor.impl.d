test/test_executor.ml: Alcotest Database Errors List Relational Table Test_support
