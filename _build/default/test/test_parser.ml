open Relational

let parse_q = Parser.query
let parse_e = Parser.expr

let expr_t : Ast.expr Alcotest.testable =
  Alcotest.testable (fun ppf e -> Format.pp_print_string ppf (Sql_print.expr e)) ( = )

let check_expr msg expected src = Alcotest.check expr_t msg expected (parse_e src)

let test_precedence () =
  check_expr "mul binds tighter than add"
    Ast.(Binop (Add, Lit (Value.Int 1), Binop (Mul, Lit (Value.Int 2), Lit (Value.Int 3))))
    "1 + 2 * 3";
  check_expr "and binds tighter than or"
    Ast.(
      Binop
        ( Or,
          Binop (And, Lit (Value.Bool true), Lit (Value.Bool false)),
          Lit (Value.Bool true) ))
    "true AND false OR true";
  check_expr "comparison over arithmetic"
    Ast.(
      Binop
        ( Lt,
          Binop (Add, Col (None, "a"), Lit (Value.Int 1)),
          Col (None, "b") ))
    "a + 1 < b"

let test_unary_minus () =
  check_expr "negative literal folds" (Ast.Lit (Value.Int (-5))) "-5";
  check_expr "negation of column" Ast.(Unop (Neg, Col (None, "x"))) "-x"

let test_qualified_columns () =
  check_expr "qualified" (Ast.Col (Some "t", "x")) "t.x";
  check_expr "unqualified" (Ast.Col (None, "x")) "x"

let test_agg_calls () =
  check_expr "count star" Ast.(Agg_call (Count_star, false, None)) "COUNT(*)";
  check_expr "count distinct"
    Ast.(Agg_call (Count, true, Some (Col (Some "u", "uid"))))
    "count(DISTINCT u.uid)";
  check_expr "sum" Ast.(Agg_call (Sum, false, Some (Col (None, "x")))) "SUM(x)"

let test_select_basics () =
  match parse_q "SELECT a, b AS bee FROM t WHERE a = 1" with
  | Ast.Select s ->
    Alcotest.(check int) "two items" 2 (List.length s.items);
    Alcotest.(check bool) "has where" true (s.where <> None);
    Alcotest.(check int) "one from" 1 (List.length s.from)
  | _ -> Alcotest.fail "expected select"

let test_distinct_on () =
  match parse_q "SELECT DISTINCT ON (r.ts), r.* FROM r" with
  | Ast.Select { distinct = Ast.Distinct_on [ Ast.Col (Some "r", "ts") ]; items; _ } ->
    Alcotest.(check bool) "table star" true (items = [ Ast.Table_star "r" ])
  | _ -> Alcotest.fail "expected DISTINCT ON"

let test_group_having () =
  match
    parse_q
      "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept DESC LIMIT 3"
  with
  | Ast.Select s ->
    Alcotest.(check int) "group by" 1 (List.length s.group_by);
    Alcotest.(check bool) "having" true (s.having <> None);
    Alcotest.(check int) "order by" 1 (List.length s.order_by);
    Alcotest.(check (option int)) "limit" (Some 3) s.limit
  | _ -> Alcotest.fail "expected select"

let test_join_desugar () =
  (* INNER JOIN becomes comma join + conjunct. *)
  match parse_q "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1" with
  | Ast.Select s ->
    Alcotest.(check int) "two from items" 2 (List.length s.from);
    Alcotest.(check int) "two conjuncts" 2 (List.length (Ast.conjuncts_opt s.where))
  | _ -> Alcotest.fail "expected select"

let test_union () =
  match parse_q "SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v" with
  | Ast.Union { all = false; right = Ast.Union { all = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected right-nested unions"

let test_subquery_in_from () =
  match parse_q "SELECT s.x FROM (SELECT a AS x FROM t) s WHERE s.x = 2" with
  | Ast.Select { from = [ Ast.From_subquery { alias = "s"; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "expected subquery"

let test_statements () =
  (match Parser.stmt "CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL)" with
  | Ast.Create_table { table = "t"; columns } ->
    Alcotest.(check int) "4 cols" 4 (List.length columns)
  | _ -> Alcotest.fail "create");
  (match Parser.stmt "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert { columns = Some [ "a"; "b" ]; rows; _ } ->
    Alcotest.(check int) "2 rows" 2 (List.length rows)
  | _ -> Alcotest.fail "insert");
  (match Parser.stmt "DELETE FROM t WHERE a = 1" with
  | Ast.Delete { where = Some _; _ } -> ()
  | _ -> Alcotest.fail "delete");
  (match Parser.stmt "UPDATE t SET a = 2 WHERE b = 'x'" with
  | Ast.Update { sets = [ ("a", _) ]; _ } -> ()
  | _ -> Alcotest.fail "update");
  match Parser.stmt "DROP TABLE IF EXISTS t" with
  | Ast.Drop_table { if_exists = true; _ } -> ()
  | _ -> Alcotest.fail "drop"

let test_script () =
  let stmts = Parser.script "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  Alcotest.(check int) "two statements" 2 (List.length stmts)

let test_paper_policy_p5b () =
  (* The exact concrete policy from Example 3.1 parses. *)
  let sql =
    "SELECT DISTINCT 'P5b violated' AS errorMessage FROM Provenance p \
     WHERE p.irid = 'patients' GROUP BY p.ts, p.otid HAVING COUNT(distinct p.itid) < 10"
  in
  match parse_q sql with
  | Ast.Select { group_by = [ _; _ ]; having = Some _; _ } -> ()
  | _ -> Alcotest.fail "P5b did not parse into the expected shape"

let test_paper_policy_p2b () =
  let sql =
    "SELECT DISTINCT 'P2b violated' AS errorMessage \
     FROM Users u, Schemas s, Groups g, Clock c \
     WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid \
     AND g.gid = 'Students' AND u.ts > c.ts - 1209600 \
     HAVING COUNT(distinct u.uid) > 10"
  in
  match parse_q sql with
  | Ast.Select { from; group_by = []; having = Some _; _ } ->
    Alcotest.(check int) "4 relations" 4 (List.length from)
  | _ -> Alcotest.fail "P2b did not parse"

let test_errors () =
  let fails src =
    match Parser.stmt src with
    | exception Errors.Sql_error (Errors.Parse_error, _) -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  fails "SELECT";
  fails "SELECT FROM t";
  fails "SELECT * FROM";
  fails "SELECT * FROM t WHERE";
  fails "SELECT * FROM (SELECT a FROM t)";
  (* missing alias *)
  fails "FOO BAR";
  fails "SELECT unknown_fn(x) FROM t";
  fails "SELECT * FROM t;;garbage"

(* Round-trip: print ∘ parse = id on a corpus of queries. *)
let test_roundtrip_corpus () =
  let corpus =
    [
      "SELECT * FROM t";
      "SELECT DISTINCT a, t.b FROM t WHERE a = 1 AND b != 'x'";
      "SELECT DISTINCT ON (r.ts), r.* FROM r, s WHERE r.ts = s.ts";
      "SELECT a + 1 * 2 AS y FROM t ORDER BY y DESC LIMIT 10";
      "SELECT COUNT(DISTINCT u.uid) FROM users u GROUP BY u.gid HAVING COUNT(*) > 3";
      "SELECT x FROM (SELECT y AS x FROM t) q";
      "(SELECT a FROM t) UNION (SELECT b FROM u)";
      "SELECT a - 1 - 2, a - (1 - 2) FROM t";
      "SELECT NOT a OR b AND c FROM t";
    ]
  in
  List.iter
    (fun src ->
      let q1 = parse_q src in
      let printed = Sql_print.query q1 in
      let q2 =
        try parse_q printed
        with e -> Alcotest.failf "re-parse of %S failed: %s" printed (Printexc.to_string e)
      in
      if not (Ast.equal_query q1 q2) then
        Alcotest.failf "round-trip mismatch: %S -> %S" src printed)
    corpus

let suite =
  [
    Test_support.tc "precedence" test_precedence;
    Test_support.tc "unary minus" test_unary_minus;
    Test_support.tc "qualified columns" test_qualified_columns;
    Test_support.tc "aggregate calls" test_agg_calls;
    Test_support.tc "select basics" test_select_basics;
    Test_support.tc "distinct on" test_distinct_on;
    Test_support.tc "group/having/order/limit" test_group_having;
    Test_support.tc "join desugar" test_join_desugar;
    Test_support.tc "union nesting" test_union;
    Test_support.tc "subquery in from" test_subquery_in_from;
    Test_support.tc "statements" test_statements;
    Test_support.tc "script" test_script;
    Test_support.tc "paper policy P5b" test_paper_policy_p5b;
    Test_support.tc "paper policy P2b" test_paper_policy_p2b;
    Test_support.tc "parse errors" test_errors;
    Test_support.tc "print/parse round-trip" test_roundtrip_corpus;
  ]
