open Relational
open Datalawyer
open Test_support

(* A database with installed log relations so policies can be created. *)
let policy_db () =
  let db = sample_db () in
  let engine = Engine.create db in
  (db, engine)

let mk engine name sql = Engine.add_policy engine ~name sql

let test_message_extraction () =
  let _, e = policy_db () in
  let p = mk e "m1" "SELECT DISTINCT 'custom error' AS errorMessage FROM users u WHERE u.uid = 99" in
  Alcotest.(check string) "message" "custom error" p.Policy.message

let test_log_rels () =
  let _, e = policy_db () in
  let p =
    mk e "r1"
      "SELECT DISTINCT 'x' FROM users u, schema s, provenance p \
       WHERE u.ts = s.ts AND s.ts = p.ts"
  in
  Alcotest.(check (slist string compare)) "log rels"
    [ "provenance"; "schema"; "users" ]
    p.Policy.log_rels

let test_monotone_classification () =
  let _, e = policy_db () in
  let spju = mk e "c1" "SELECT DISTINCT 'x' FROM users u WHERE u.uid = 1" in
  Alcotest.(check bool) "SPJ is monotone" true spju.Policy.monotone;
  let count_gt =
    mk e "c2" "SELECT DISTINCT 'x' FROM users u HAVING COUNT(DISTINCT u.uid) > 5"
  in
  Alcotest.(check bool) "count > k is monotone" true count_gt.Policy.monotone;
  Alcotest.(check bool) "count distinct > k interleavable" true
    count_gt.Policy.interleavable;
  let count_lt =
    mk e "c3" "SELECT DISTINCT 'x' FROM users u GROUP BY u.ts HAVING COUNT(*) < 5"
  in
  Alcotest.(check bool) "count < k not monotone" false count_lt.Policy.monotone;
  let count_star =
    mk e "c4" "SELECT DISTINCT 'x' FROM users u GROUP BY u.uid HAVING COUNT(*) > 5"
  in
  Alcotest.(check bool) "count(*) > k monotone" true count_star.Policy.monotone;
  Alcotest.(check bool) "count(*) not interleavable (multiplicity-unsafe)" false
    count_star.Policy.interleavable

let test_time_independent_classification () =
  let _, e = policy_db () in
  let ti =
    mk e "t1"
      "SELECT DISTINCT 'x' FROM users u, schema s WHERE u.ts = s.ts AND u.uid = 1"
  in
  Alcotest.(check bool) "ts-joined SPJ is TI" true ti.Policy.time_independent;
  let not_joined =
    mk e "t2" "SELECT DISTINCT 'x' FROM users u, schema s WHERE u.uid = 1"
  in
  Alcotest.(check bool) "unjoined ts not TI" false not_joined.Policy.time_independent;
  let agg_with_ts =
    mk e "t3"
      "SELECT DISTINCT 'x' FROM provenance p GROUP BY p.ts HAVING COUNT(DISTINCT p.otid) > 10"
  in
  Alcotest.(check bool) "agg grouped by ts is TI" true agg_with_ts.Policy.time_independent;
  let agg_no_ts =
    mk e "t4" "SELECT DISTINCT 'x' FROM provenance p HAVING COUNT(DISTINCT p.otid) > 10"
  in
  Alcotest.(check bool) "agg without ts group not TI" false
    agg_no_ts.Policy.time_independent;
  let clock_window =
    mk e "t5"
      "SELECT DISTINCT 'x' FROM users u, clock c WHERE u.ts > c.ts - 10 \
       HAVING COUNT(DISTINCT u.uid) > 2"
  in
  Alcotest.(check bool) "clock window not TI" false clock_window.Policy.time_independent;
  (* transitive ts joins count *)
  let transitive =
    mk e "t6"
      "SELECT DISTINCT 'x' FROM users u, schema s, provenance p \
       WHERE u.ts = s.ts AND s.ts = p.ts"
  in
  Alcotest.(check bool) "transitive ts join is TI" true transitive.Policy.time_independent

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_ti_rewriting () =
  let _, e = policy_db () in
  let p =
    mk e "rw"
      "SELECT DISTINCT 'x' FROM users u, schema s WHERE u.ts = s.ts AND u.uid = 1"
  in
  let is_log rel = Catalog.is_log (Database.catalog (Engine.database e)) rel in
  let p' = Time_independent.apply ~is_log p in
  Alcotest.(check bool) "rewritten" true p'.Policy.ti_rewritten;
  let sql = Sql_print.query p'.Policy.query in
  Alcotest.(check bool) "mentions clock" true (contains_substring sql "clock")

let test_workload_policy_classification () =
  let mimic = Mimic.Generate.small_config in
  let db = Mimic.Generate.database ~config:mimic () in
  let e = Engine.create db in
  let add name =
    let p = Workload.Policies.find ~n_patients:mimic.Mimic.Generate.n_patients name in
    mk e name p.Workload.Policies.sql
  in
  let p1 = add "P1" and p2 = add "P2" and p3 = add "P3" in
  let p4 = add "P4" and p5 = add "P5" and p6 = add "P6" in
  Alcotest.(check bool) "P1 monotone" true p1.Policy.monotone;
  Alcotest.(check bool) "P1 time-dependent" false p1.Policy.time_independent;
  Alcotest.(check bool) "P2 TI" true p2.Policy.time_independent;
  Alcotest.(check bool) "P3 TI" true p3.Policy.time_independent;
  Alcotest.(check bool) "P3 interleavable" true p3.Policy.interleavable;
  Alcotest.(check bool) "P4 TI" true p4.Policy.time_independent;
  Alcotest.(check bool) "P4 non-monotone" false p4.Policy.monotone;
  Alcotest.(check bool) "P5 time-dependent" false p5.Policy.time_independent;
  Alcotest.(check bool) "P5 interleavable" true p5.Policy.interleavable;
  Alcotest.(check bool) "P6 interleavable" true p6.Policy.interleavable

let test_check_direct () =
  let db, e = policy_db () in
  let p = mk e "chk" "SELECT DISTINCT 'boom' FROM emp WHERE salary > 140" in
  (* policy over plain database relation: violated because eli earns 150 *)
  Alcotest.(check (option string)) "violated" (Some "boom") (Policy.check db p);
  ignore (Database.exec db "DELETE FROM emp WHERE salary > 140");
  Alcotest.(check (option string)) "satisfied" None (Policy.check db p)

let test_duplicate_name_rejected () =
  let _, e = policy_db () in
  ignore (mk e "dup" "SELECT DISTINCT 'x' FROM users u WHERE u.uid = 1");
  match mk e "dup" "SELECT DISTINCT 'y' FROM users u WHERE u.uid = 2" with
  | exception Errors.Sql_error (Errors.Catalog_error, _) -> ()
  | _ -> Alcotest.fail "expected duplicate-name rejection"

let test_bad_policy_sql_rejected () =
  let _, e = policy_db () in
  (match mk e "bad1" "SELECT DISTINCT 'x' FROM nonexistent_table t" with
  | exception Errors.Sql_error (Errors.Catalog_error, _) -> ()
  | _ -> Alcotest.fail "unknown table should fail");
  match mk e "bad2" "SELECT DISTINCT 'x' FROM users u WHERE nocolumn = 1" with
  | exception Errors.Sql_error (Errors.Bind_error, _) -> ()
  | _ -> Alcotest.fail "unknown column should fail"

let suite =
  [
    tc "message extraction" test_message_extraction;
    tc "log relations" test_log_rels;
    tc "monotonicity" test_monotone_classification;
    tc "time independence" test_time_independent_classification;
    tc "TI rewriting" test_ti_rewriting;
    tc "workload policy classification" test_workload_policy_classification;
    tc "direct check" test_check_direct;
    tc "duplicate name" test_duplicate_name_rejected;
    tc "bad policy sql" test_bad_policy_sql_rejected;
  ]
