(** Property-based tests (QCheck, registered as alcotest cases).

    Core data-structure invariants (Vec, Value), frontend round-trips,
    relational-algebra laws of the executor, aggregate correctness against
    OCaml reference implementations, lineage well-formedness, and the
    DataLawyer invariants (witness soundness, partial-policy implication,
    engine determinism) on randomized inputs. *)

open Relational
open Datalawyer

let gen = QCheck.Gen.oneofl
let ( let+ ) g f = QCheck.Gen.map f g

(* Generators --------------------------------------------------------------- *)

let value_gen : Value.t QCheck.Gen.t =
  QCheck.Gen.frequency
    [
      (1, QCheck.Gen.return Value.Null);
      (2, QCheck.Gen.map (fun b -> Value.Bool b) QCheck.Gen.bool);
      (5, QCheck.Gen.map (fun i -> Value.Int i) (QCheck.Gen.int_range (-50) 50));
      (3, QCheck.Gen.map (fun f -> Value.Float (Float.of_int f /. 2.)) (QCheck.Gen.int_range (-20) 20));
      (4, QCheck.Gen.map (fun s -> Value.Str s) (QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range 'a' 'e') (QCheck.Gen.int_range 0 3)));
    ]

let value_arb = QCheck.make ~print:Value.to_string value_gen

(* A random instance of a fixed two-table schema, loaded into a db. *)
let table_rows_gen =
  QCheck.Gen.list_size (QCheck.Gen.int_range 0 25)
    (QCheck.Gen.pair (QCheck.Gen.int_range 0 6) (QCheck.Gen.int_range 0 6))

let db_of_rows rows_r rows_s =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE r (a INT, b INT); CREATE TABLE s (a INT, c INT)");
  let r = Database.table db "r" and s = Database.table db "s" in
  List.iter (fun (a, b) -> ignore (Table.insert r [| Value.Int a; Value.Int b |])) rows_r;
  List.iter (fun (a, c) -> ignore (Table.insert s [| Value.Int a; Value.Int c |])) rows_s;
  db

let two_tables_arb =
  QCheck.make
    ~print:(fun (r, s) ->
      Printf.sprintf "r=%s s=%s"
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) r))
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) s)))
    (QCheck.Gen.pair table_rows_gen table_rows_gen)

(* Random scalar expressions over columns a, b of table r. *)
let expr_gen : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Ast.Lit (Value.Int i)) (int_range (-5) 5);
               oneofl [ Ast.Col (Some "r", "a"); Ast.Col (Some "r", "b") ];
             ]
         else
           frequency
             [
               (1, map (fun i -> Ast.Lit (Value.Int i)) (int_range (-5) 5));
               (2, oneofl [ Ast.Col (Some "r", "a"); Ast.Col (Some "r", "b") ]);
               ( 3,
                 map3
                   (fun op l r -> Ast.Binop (op, l, r))
                   (oneofl Ast.[ Add; Sub; Mul; Eq; Neq; Lt; Le; Gt; Ge; And; Or ])
                   (self (n / 2)) (self (n / 2)) );
               (1, map (fun e -> Ast.Unop (Ast.Not, e)) (self (n / 2)));
             ])

let expr_arb = QCheck.make ~print:Sql_print.expr expr_gen

(* Properties ----------------------------------------------------------------- *)

(* Vec behaves like a list. *)
let prop_vec_model =
  QCheck.Test.make ~name:"Vec model: push/truncate/filter agree with list"
    ~count:200
    (QCheck.list (QCheck.int_bound 100))
    (fun xs ->
      let v = Vec.create ~dummy:(-1) () in
      List.iter (Vec.push v) xs;
      let half = List.length xs / 2 in
      Vec.truncate v half;
      let model = List.filteri (fun i _ -> i < half) xs in
      let even x = x mod 2 = 0 in
      ignore (Vec.filter_in_place even v);
      Vec.to_list v = List.filter even model)

let prop_value_order =
  QCheck.Test.make ~name:"Value.compare is a total order consistent with equal"
    ~count:500
    (QCheck.triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let ( <= ) x y = Value.compare x y <= 0 in
      (* antisymmetry up to equal *)
      ((not (a <= b && b <= a)) || Value.equal a b)
      (* transitivity *)
      && ((not (a <= b && b <= c)) || a <= c))

let prop_canonical_key =
  QCheck.Test.make ~name:"canonical_key agrees with Value.equal" ~count:500
    (QCheck.pair value_arb value_arb)
    (fun (a, b) ->
      Value.equal a b = (Value.canonical_key a = Value.canonical_key b))

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expression print/parse round-trip" ~count:300 expr_arb
    (fun e ->
      let printed = Sql_print.expr e in
      match Parser.expr printed with
      | e2 ->
        (* NOT parses right-associated with comparisons folded the same
           way; require semantic equality via evaluation on sample rows *)
        let env a b : Eval.env =
          {
            Eval.col =
              (fun _ name ->
                if name = "a" then Value.Int a else Value.Int b);
            agg = None;
          }
        in
        List.for_all
          (fun (a, b) ->
            let try_eval e =
              try Ok (Eval.eval (env a b) e) with Errors.Sql_error _ -> Error ()
            in
            try_eval e = try_eval e2)
          [ (0, 0); (1, 2); (-3, 5); (7, 7) ]
      | exception Errors.Sql_error _ -> false)

let rows db sql =
  List.map
    (fun (r : Executor.row_out) -> Array.to_list r.Executor.values)
    (Database.query db sql).Executor.out_rows

let sorted_rows db sql =
  List.sort (fun a b -> List.compare Value.compare a b) (rows db sql)

let prop_where_commutes =
  QCheck.Test.make ~name:"WHERE conjunct order is irrelevant" ~count:100
    two_tables_arb
    (fun (r, s) ->
      let db = db_of_rows r s in
      sorted_rows db "SELECT r.a, r.b FROM r WHERE r.a < 4 AND r.b > 1"
      = sorted_rows db "SELECT r.a, r.b FROM r WHERE r.b > 1 AND r.a < 4")

let prop_join_commutes =
  QCheck.Test.make ~name:"join commutativity" ~count:100 two_tables_arb
    (fun (rr, ss) ->
      let db = db_of_rows rr ss in
      sorted_rows db "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
      = sorted_rows db "SELECT r.b, s.c FROM s, r WHERE s.a = r.a")

let prop_join_vs_nested_loop =
  QCheck.Test.make ~name:"hash join agrees with a nested-loop formulation"
    ~count:100 two_tables_arb
    (fun (rr, ss) ->
      let db = db_of_rows rr ss in
      (* r.a = s.a as equi-join vs arithmetic predicate the planner cannot
         hash: r.a - s.a = 0 *)
      sorted_rows db "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
      = sorted_rows db "SELECT r.b, s.c FROM r, s WHERE r.a - s.a = 0")

let prop_distinct_idempotent =
  QCheck.Test.make ~name:"DISTINCT is idempotent and minimal" ~count:100
    two_tables_arb
    (fun (rr, ss) ->
      let db = db_of_rows rr ss in
      let d = sorted_rows db "SELECT DISTINCT r.a FROM r" in
      let dd =
        sorted_rows db "SELECT DISTINCT q.a FROM (SELECT DISTINCT r.a FROM r) q"
      in
      let expected =
        List.sort_uniq compare (List.map (fun (a, _) -> [ Value.Int a ]) rr)
      in
      d = dd && d = expected)

let prop_union_is_set_union =
  QCheck.Test.make ~name:"UNION = set union; UNION ALL = concatenation"
    ~count:100 two_tables_arb
    (fun (rr, ss) ->
      let db = db_of_rows rr ss in
      let union = sorted_rows db "SELECT a FROM r UNION SELECT a FROM s" in
      let expected =
        List.sort_uniq compare
          (List.map (fun (a, _) -> [ Value.Int a ]) (rr @ ss))
      in
      let union_all = rows db "SELECT a FROM r UNION ALL SELECT a FROM s" in
      union = expected && List.length union_all = List.length rr + List.length ss)

let prop_group_counts =
  QCheck.Test.make ~name:"GROUP BY counts partition the table" ~count:100
    two_tables_arb
    (fun (rr, _) ->
      let db = db_of_rows rr [] in
      let counts = rows db "SELECT a, COUNT(*) FROM r GROUP BY a" in
      let total =
        List.fold_left
          (fun acc row ->
            match row with [ _; Value.Int n ] -> acc + n | _ -> acc)
          0 counts
      in
      total = List.length rr)

let prop_aggregates_reference =
  QCheck.Test.make ~name:"SUM/MIN/MAX/AVG/COUNT match OCaml reference"
    ~count:100 two_tables_arb
    (fun (rr, _) ->
      let db = db_of_rows rr [] in
      let bs = List.map snd rr in
      match rows db "SELECT SUM(b), MIN(b), MAX(b), COUNT(b), AVG(b) FROM r" with
      | [ [ sum; mn; mx; cnt; avg ] ] ->
        let expect_sum =
          if bs = [] then Value.Null else Value.Int (List.fold_left ( + ) 0 bs)
        in
        let expect_min =
          if bs = [] then Value.Null else Value.Int (List.fold_left min max_int bs)
        in
        let expect_max =
          if bs = [] then Value.Null else Value.Int (List.fold_left max min_int bs)
        in
        let expect_avg =
          if bs = [] then Value.Null
          else
            Value.Float
              (float_of_int (List.fold_left ( + ) 0 bs) /. float_of_int (List.length bs))
        in
        Value.equal sum expect_sum && Value.equal mn expect_min
        && Value.equal mx expect_max
        && Value.equal cnt (Value.Int (List.length bs))
        && Value.equal avg expect_avg
      | _ -> false)

let prop_lineage_wellformed =
  QCheck.Test.make ~name:"lineage points at existing contributing tuples"
    ~count:100 two_tables_arb
    (fun (rr, ss) ->
      let db = db_of_rows rr ss in
      let result =
        Database.query
          ~opts:{ Executor.lineage = true; track_src = false }
          db "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b > 1"
      in
      let r_table = Database.table db "r" and s_table = Database.table db "s" in
      List.for_all
        (fun (row : Executor.row_out) ->
          row.Executor.lineage <> []
          && List.for_all
               (fun (rel, tid) ->
                 match rel with
                 | "r" -> Table.find_by_tid r_table tid <> None
                 | "s" -> Table.find_by_tid s_table tid <> None
                 | _ -> false)
               row.Executor.lineage)
        result.Executor.out_rows)

(* DataLawyer invariants ----------------------------------------------------- *)

(* Engine decisions are deterministic for a fixed stream. *)
let prop_engine_deterministic =
  let stream_gen =
    QCheck.Gen.list_size (QCheck.Gen.int_range 1 15)
      (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (gen [ "W1"; "W2" ]))
  in
  QCheck.Test.make ~name:"engine decisions are deterministic" ~count:10
    (QCheck.make stream_gen)
    (fun stream ->
      let run () =
        let s =
          Workload.Runner.make ~mimic:{ Mimic.Generate.small_config with n_patients = 40; events_per_patient = 4 }
            ~params:
              {
                Workload.Policies.default_params with
                p1_window = 4;
                p1_max_users = 1;
                p5_window = 6;
                p5_max_fraction = 0.3;
              }
            ()
        in
        List.map
          (fun (uid, qn) ->
            let q = Workload.Runner.query s qn in
            match Engine.submit s.Workload.Runner.engine ~uid q.Workload.Queries.sql with
            | Engine.Accepted _ -> true
            | Engine.Rejected _ -> false)
          stream
      in
      run () = run ())

(* Witness soundness: after compaction the policy evaluates identically at
   all future times (Def. 4.1, from now+1 on). *)
let prop_witness_absolute =
  let scenario_gen =
    QCheck.Gen.triple (QCheck.Gen.int_range 2 10) (QCheck.Gen.int_range 0 4)
      (QCheck.Gen.list_size (QCheck.Gen.int_range 0 30)
         (QCheck.Gen.pair (QCheck.Gen.int_range 1 20) (QCheck.Gen.int_range 0 2)))
  in
  QCheck.Test.make ~name:"absolute witnesses preserve future evaluations"
    ~count:60 (QCheck.make scenario_gen)
    (fun (window, threshold, log_rows) ->
      let db = Database.create () in
      ignore (Database.exec db "CREATE TABLE dummy (x INT)");
      let engine = Engine.create db in
      let p =
        Engine.add_policy engine ~name:"w"
          (Printf.sprintf
             "SELECT DISTINCT 'v' FROM users u, clock c WHERE u.uid = 1 AND \
              u.ts > c.ts - %d HAVING COUNT(DISTINCT u.ts) > %d"
             window threshold)
      in
      let users = Database.table db "users" in
      List.iter
        (fun (ts, uid) ->
          ignore (Table.insert users [| Value.Int ts; Value.Int uid |]))
        (List.sort compare log_rows);
      let now = 20 in
      let is_log rel = Catalog.is_log (Database.catalog db) rel in
      let retained = Hashtbl.create 16 in
      (match List.assoc_opt "users" (Witness.for_policy ~is_log ~now p) with
      | Some (Witness.Queries qs) ->
        Usage_log.set_clock db now;
        List.iter
          (fun q ->
            let r =
              Executor.run
                ~opts:{ Executor.lineage = false; track_src = true }
                (Database.catalog db) (Ast.Select q)
            in
            List.iter
              (fun (row : Executor.row_out) ->
                List.iter
                  (fun (slot, tid) ->
                    if slot = 0 then Hashtbl.replace retained tid ())
                  row.Executor.src_tids)
              r.Executor.out_rows)
          qs
      | _ -> ());
      let eval_at t =
        Usage_log.set_clock db t;
        Executor.is_empty (Database.catalog db) p.Policy.query
      in
      let horizon = window + 3 in
      let full = List.init horizon (fun k -> eval_at (now + 1 + k)) in
      ignore (Table.retain_tids users retained);
      let compacted = List.init horizon (fun k -> eval_at (now + 1 + k)) in
      full = compacted)

(* Lemma 4.4 as a property: π non-empty implies every πS non-empty. *)
let prop_partial_implication =
  let scenario_gen =
    QCheck.Gen.pair (QCheck.Gen.int_range 0 3)
      (QCheck.Gen.list_size (QCheck.Gen.int_range 0 20)
         (QCheck.Gen.triple (QCheck.Gen.int_range 1 8) (QCheck.Gen.int_range 0 3)
            QCheck.Gen.bool))
  in
  QCheck.Test.make ~name:"Lemma 4.4: full policy implies partial policies"
    ~count:60 (QCheck.make scenario_gen)
    (fun (threshold, events) ->
      let db = Database.create () in
      ignore (Database.exec db "CREATE TABLE emp (id INT)");
      let engine = Engine.create db in
      let p =
        Engine.add_policy engine ~name:"pp"
          (Printf.sprintf
             "SELECT DISTINCT 'v' FROM users u, schema s WHERE u.ts = s.ts \
              AND s.irid = 'emp' HAVING COUNT(DISTINCT u.uid) > %d"
             threshold)
      in
      let users = Database.table db "users" in
      let sch = Database.table db "schema" in
      List.iter
        (fun (ts, uid, on_emp) ->
          ignore (Table.insert users [| Value.Int ts; Value.Int uid |]);
          ignore
            (Table.insert sch
               [|
                 Value.Int ts;
                 Value.Str "c";
                 Value.Str (if on_emp then "emp" else "other");
                 Value.Null;
                 Value.Bool false;
               |]))
        events;
      let is_log rel = Catalog.is_log (Database.catalog db) rel in
      let holds q = not (Executor.is_empty (Database.catalog db) q) in
      (not (holds p.Policy.query))
      || List.for_all
           (fun available ->
             holds (Partial.of_query ~is_log ~available p.Policy.query))
           [ []; [ "users" ]; [ "schema" ] ])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_vec_model;
      prop_value_order;
      prop_canonical_key;
      prop_expr_roundtrip;
      prop_where_commutes;
      prop_join_commutes;
      prop_join_vs_nested_loop;
      prop_distinct_idempotent;
      prop_union_is_set_union;
      prop_group_counts;
      prop_aggregates_reference;
      prop_lineage_wellformed;
      prop_engine_deterministic;
      prop_witness_absolute;
      prop_partial_implication;
    ]

let _ = ( let+ )
