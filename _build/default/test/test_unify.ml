open Relational
open Datalawyer
open Test_support

let setup () =
  let db = sample_db () in
  let e = Engine.create db in
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  (db, e, is_log)

let family_member e k =
  Engine.add_policy e
    ~name:(Printf.sprintf "fam%d" k)
    (Printf.sprintf
       "SELECT DISTINCT 'family %d violated' FROM users u, emp g \
        WHERE u.uid = g.id AND g.dept = 'dept%d' HAVING COUNT(DISTINCT u.uid) > 2"
       k k)

let test_unifies_family () =
  let db, e, is_log = setup () in
  let ps = List.init 5 (family_member e) in
  let o = Unify.run (Database.catalog db) ~is_log ps in
  Alcotest.(check int) "one unified policy" 1 (List.length o.Unify.policies);
  Alcotest.(check int) "one group" 1 (List.length o.Unify.groups);
  let g = List.hd o.Unify.groups in
  Alcotest.(check int) "five members" 5 (List.length g.Unify.members);
  (* constants table materialized with the five distinct constants *)
  let consts = Database.rows db (Printf.sprintf "SELECT const FROM %s" g.Unify.constants_table) in
  Alcotest.(check int) "five constants" 5 (List.length consts);
  (* unified query joins the constants table and groups by it *)
  let sql = Sql_print.query g.Unify.policy.Policy.query in
  Alcotest.(check bool) "joins constants table" true
    (Test_policy.contains_substring sql g.Unify.constants_table);
  Alcotest.(check bool) "groups by the constant" true
    (Test_policy.contains_substring sql "GROUP BY")

let test_does_not_unify_different_shapes () =
  let db, e, is_log = setup () in
  let p1 = family_member e 1 in
  let p2 =
    Engine.add_policy e ~name:"other"
      "SELECT DISTINCT 'different shape' FROM users u WHERE u.uid = 9"
  in
  let o = Unify.run (Database.catalog db) ~is_log [ p1; p2 ] in
  Alcotest.(check int) "no unification" 2 (List.length o.Unify.policies);
  Alcotest.(check int) "no groups" 0 (List.length o.Unify.groups)

let test_does_not_unify_two_differing_literals () =
  let db, e, is_log = setup () in
  let mk k thr =
    Engine.add_policy e
      ~name:(Printf.sprintf "two%d" k)
      (Printf.sprintf
         "SELECT DISTINCT 'v' FROM users u, emp g WHERE u.uid = g.id AND \
          g.dept = 'd%d' HAVING COUNT(DISTINCT u.uid) > %d"
         k thr)
  in
  let p1 = mk 1 2 and p2 = mk 2 5 in
  let o = Unify.run (Database.catalog db) ~is_log [ p1; p2 ] in
  Alcotest.(check int) "left alone" 2 (List.length o.Unify.policies)

(* Semantic equivalence: the unified policy fires iff some member fires. *)
let test_unified_equivalence_randomized () =
  let rng = Mimic.Rng.create ~seed:23 in
  for _trial = 1 to 20 do
    let db, e, is_log = setup () in
    (* members keyed on dept name in the sample db *)
    let mk dept =
      Engine.add_policy e ~name:("u_" ^ dept)
        (Printf.sprintf
           "SELECT DISTINCT 'dept %s overused' FROM users u, emp g \
            WHERE u.uid = g.id AND g.dept = '%s' HAVING COUNT(DISTINCT u.uid) > 1"
           dept dept)
    in
    let members = List.map mk [ "eng"; "ops"; "mgmt" ] in
    let o = Unify.run (Database.catalog db) ~is_log members in
    Alcotest.(check int) "unified" 1 (List.length o.Unify.policies);
    let unified = List.hd o.Unify.policies in
    (* random users log: uids matching emp ids 1..5 *)
    let users = Database.table db "users" in
    for ts = 1 to 6 do
      if Mimic.Rng.bool rng then
        ignore (Table.insert users [| i ts; i (1 + Mimic.Rng.int rng 5) |])
    done;
    let fires q = not (Executor.is_empty (Database.catalog db) q) in
    let member_fires = List.exists (fun p -> fires p.Policy.query) members in
    Alcotest.(check bool) "unified ≡ disjunction of members" member_fires
      (fires unified.Policy.query)
  done

let test_engine_uses_unification () =
  let _, e, _ = setup () in
  let _ = List.init 4 (family_member e) in
  let pl = Engine.plan e in
  Alcotest.(check int) "plan collapses family to one" 1 (List.length pl.Engine.active);
  Alcotest.(check int) "group recorded" 1 (List.length pl.Engine.unified_groups)

let suite =
  [
    tc "unifies a parameter family" test_unifies_family;
    tc "different shapes untouched" test_does_not_unify_different_shapes;
    tc "two differing literals untouched" test_does_not_unify_two_differing_literals;
    Alcotest.test_case "unified equivalence (randomized)" `Slow
      test_unified_equivalence_randomized;
    tc "engine plan uses unification" test_engine_uses_unification;
  ]
