(** Shared helpers for the test suites. *)

open Relational

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp (fun a b -> Value.equal a b)

let row = Alcotest.list value
let rows = Alcotest.list row

(* Sort result rows for order-insensitive comparison. *)
let sorted (rs : Value.t list list) =
  List.sort (fun a b -> List.compare Value.compare a b) rs

let check_rows msg expected actual =
  Alcotest.check rows msg (sorted expected) (sorted actual)

let check_rows_ordered msg expected actual = Alcotest.check rows msg expected actual

(* Build a database from a SQL script. *)
let db_of_script script =
  let db = Database.create () in
  ignore (Database.exec_script db script);
  db

let i n : Value.t = Value.Int n
let f x : Value.t = Value.Float x
let s x : Value.t = Value.Str x
let b x : Value.t = Value.Bool x
let null : Value.t = Value.Null

let tc name fn = Alcotest.test_case name `Quick fn

(* A small example database shared by several suites. *)
let sample_db () =
  db_of_script
    {|
    CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT);
    CREATE TABLE dept (dname TEXT, budget INT);
    INSERT INTO emp VALUES
      (1, 'ada', 'eng', 120), (2, 'bob', 'eng', 100),
      (3, 'cyd', 'ops', 80), (4, 'dee', 'ops', 90), (5, 'eli', 'mgmt', 150);
    INSERT INTO dept VALUES ('eng', 1000), ('ops', 500), ('mgmt', 800)
    |}
