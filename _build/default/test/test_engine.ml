open Relational
open Datalawyer
open Test_support

(* A tiny data-market database in the spirit of Table 1: a licensed
   provider table plus an in-house table. *)
let market_db () =
  db_of_script
    {|
    CREATE TABLE navteq (poi_id INT, name TEXT, lat FLOAT, lon FLOAT);
    CREATE TABLE inhouse (poi_id INT, revenue INT);
    INSERT INTO navteq VALUES (1, 'cafe', 47.6, -122.3), (2, 'museum', 47.61, -122.33);
    INSERT INTO inhouse VALUES (1, 100), (2, 250)
    |}

let no_join_policy =
  (* Table 1's P1 / Example 4.1: never join navteq with anything else. *)
  "SELECT DISTINCT 'no external joins allowed' AS errorMessage \
   FROM schema s1, schema s2 \
   WHERE s1.ts = s2.ts AND s1.irid = 'navteq' AND s2.irid != 'navteq'"

let accepted = function Engine.Accepted _ -> true | Engine.Rejected _ -> false
let messages = function Engine.Rejected (ms, _) -> ms | Engine.Accepted _ -> []

let test_accept_and_reject () =
  let db = market_db () in
  let e = Engine.create db in
  ignore (Engine.add_policy e ~name:"no_join" no_join_policy);
  Alcotest.(check bool) "plain navteq query accepted" true
    (accepted (Engine.submit e ~uid:0 "SELECT name FROM navteq"));
  Alcotest.(check bool) "inhouse query accepted" true
    (accepted (Engine.submit e ~uid:0 "SELECT revenue FROM inhouse"));
  let r =
    Engine.submit e ~uid:0
      "SELECT n.name, i.revenue FROM navteq n, inhouse i WHERE n.poi_id = i.poi_id"
  in
  Alcotest.(check bool) "join rejected" false (accepted r);
  Alcotest.(check (list string)) "error message surfaces"
    [ "no external joins allowed" ] (messages r)

let test_rejection_reverts_log () =
  let db = market_db () in
  let e = Engine.create ~config:Engine.noopt_config db in
  ignore (Engine.add_policy e ~name:"no_join" no_join_policy);
  ignore (Engine.submit e ~uid:0 "SELECT name FROM navteq");
  let before = Engine.log_size e "schema" in
  let r =
    Engine.submit e ~uid:0
      "SELECT n.name, i.revenue FROM navteq n, inhouse i WHERE n.poi_id = i.poi_id"
  in
  Alcotest.(check bool) "rejected" false (accepted r);
  Alcotest.(check int) "log reverted after rejection" before
    (Engine.log_size e "schema")

let test_query_results_returned () =
  let db = market_db () in
  let e = Engine.create db in
  ignore (Engine.add_policy e ~name:"no_join" no_join_policy);
  match Engine.submit e ~uid:0 "SELECT name FROM navteq WHERE poi_id = 2" with
  | Engine.Accepted (r, _) ->
    Alcotest.(check int) "one row" 1 (List.length r.Executor.out_rows)
  | Engine.Rejected _ -> Alcotest.fail "should be accepted"

(* Rate limiting (Table 1's P4): at most 3 queries per user in any window
   of 5 ticks. Exercises clock, window semantics and log persistence. *)
let rate_limit_policy =
  "SELECT DISTINCT 'rate limit exceeded' FROM users u, clock c \
   WHERE u.uid = 1 AND u.ts > c.ts - 5 \
   HAVING COUNT(DISTINCT u.ts) > 3"

let test_rate_limiting config =
  let db = market_db () in
  let e = Engine.create ~config db in
  ignore (Engine.add_policy e ~name:"rate" rate_limit_policy);
  let submit () = accepted (Engine.submit e ~uid:1 "SELECT name FROM navteq") in
  (* ticks 1,2,3 accepted; tick 4 would be the 4th in window -> rejected *)
  Alcotest.(check bool) "q1" true (submit ());
  Alcotest.(check bool) "q2" true (submit ());
  Alcotest.(check bool) "q3" true (submit ());
  Alcotest.(check bool) "q4 rejected" false (submit ());
  (* rejected queries also consume ticks; once the early queries age out
     of the window, submissions succeed again *)
  Alcotest.(check bool) "q5 rejected" false (submit ());
  Alcotest.(check bool) "q6 ok (window slid)" true (submit ());
  (* other users unaffected *)
  Alcotest.(check bool) "uid 2 ok" true
    (accepted (Engine.submit e ~uid:2 "SELECT name FROM navteq"))

let test_rate_limiting_optimized () = test_rate_limiting Engine.default_config
let test_rate_limiting_noopt () = test_rate_limiting Engine.noopt_config

let test_compaction_bounds_log () =
  let db = market_db () in
  let e = Engine.create ~config:Engine.default_config db in
  ignore (Engine.add_policy e ~name:"rate" rate_limit_policy);
  for _ = 1 to 40 do
    ignore (Engine.submit e ~uid:1 "SELECT name FROM navteq")
  done;
  (* the witness keeps at most the 5-tick window (plus the increment) *)
  Alcotest.(check bool) "users log bounded"
    true
    (Engine.log_size e "users" <= 8);
  let db2 = market_db () in
  let e2 = Engine.create ~config:Engine.noopt_config db2 in
  ignore (Engine.add_policy e2 ~name:"rate" rate_limit_policy);
  for _ = 1 to 40 do
    ignore (Engine.submit e2 ~uid:1 "SELECT name FROM navteq")
  done;
  Alcotest.(check bool) "noopt log grows" true (Engine.log_size e2 "users" > 20)

let test_ti_policy_stores_nothing () =
  let db = market_db () in
  let e = Engine.create ~config:Engine.default_config db in
  (* no_join is time-independent: with TI + compaction nothing persists *)
  ignore (Engine.add_policy e ~name:"no_join" no_join_policy);
  for _ = 1 to 10 do
    ignore (Engine.submit e ~uid:0 "SELECT name FROM navteq")
  done;
  Alcotest.(check int) "schema log empty" 0 (Engine.log_size e "schema")

let test_multiple_policies_all_messages () =
  let db = market_db () in
  let e = Engine.create ~config:{ Engine.default_config with strategy = Engine.Serial } db in
  ignore (Engine.add_policy e ~name:"no_join" no_join_policy);
  ignore
    (Engine.add_policy e ~name:"no_inhouse"
       "SELECT DISTINCT 'inhouse is off-limits' FROM schema s WHERE s.irid = 'inhouse'");
  let r =
    Engine.submit e ~uid:0
      "SELECT n.name FROM navteq n, inhouse i WHERE n.poi_id = i.poi_id"
  in
  Alcotest.(check (slist string compare)) "both violations reported"
    [ "inhouse is off-limits"; "no external joins allowed" ]
    (messages r)

let test_policy_added_mid_stream () =
  let db = market_db () in
  let e = Engine.create db in
  Alcotest.(check bool) "unrestricted at first" true
    (accepted
       (Engine.submit e ~uid:0
          "SELECT n.name FROM navteq n, inhouse i WHERE n.poi_id = i.poi_id"));
  ignore (Engine.add_policy e ~name:"no_join" no_join_policy);
  Alcotest.(check bool) "restricted after registration" false
    (accepted
       (Engine.submit e ~uid:0
          "SELECT n.name FROM navteq n, inhouse i WHERE n.poi_id = i.poi_id"));
  Engine.remove_policy e "no_join";
  Alcotest.(check bool) "unrestricted after removal" true
    (accepted
       (Engine.submit e ~uid:0
          "SELECT n.name FROM navteq n, inhouse i WHERE n.poi_id = i.poi_id"))

(* The paper's P5b (Example 3.1): k-anonymity-flavoured output check. *)
let test_p5b_output_privacy () =
  let db =
    db_of_script
      {|
      CREATE TABLE patients (pid INT, dob INT, sex TEXT);
      INSERT INTO patients VALUES
        (1, 1960, 'M'), (2, 1960, 'M'), (3, 1960, 'M'), (4, 1961, 'F')
      |}
  in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"P5b"
       "SELECT DISTINCT 'P5b violated: fewer than 3 patients contribute to an \
        answer' AS errorMessage FROM provenance p WHERE p.irid = 'patients' \
        GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) < 3");
  (* aggregate over 3 patients: fine *)
  Alcotest.(check bool) "coarse aggregate ok" true
    (accepted
       (Engine.submit e ~uid:1
          "SELECT dob, COUNT(*) FROM patients WHERE dob = 1960 GROUP BY dob"));
  (* singling out one patient: each output tuple has 1 contributor *)
  Alcotest.(check bool) "identifying query rejected" false
    (accepted (Engine.submit e ~uid:1 "SELECT sex FROM patients WHERE pid = 4"))

(* Cross-configuration equivalence: every optimization must preserve
   accept/reject decisions. Runs a mixed stream under NoOpt and under the
   fully optimized engine and compares outcomes query by query. *)
let test_noopt_equivalence () =
  let mimic = { Mimic.Generate.small_config with n_patients = 60; events_per_patient = 6 } in
  let params =
    {
      Workload.Policies.default_params with
      p1_window = 6;
      p1_max_users = 2;
      p3_max_output = 20;
      p5_window = 10;
      p5_max_fraction = 0.4;
      p6_window = 8;
      p6_max_uses = 3;
    }
  in
  let stream =
    (* (uid, query name) pairs mixing users and query sizes *)
    [ (0, "W1"); (1, "W1"); (1, "W2"); (0, "W4"); (1, "W3"); (1, "W4");
      (2, "W1"); (1, "W1"); (3, "W2"); (1, "W4"); (4, "W1"); (1, "W3");
      (1, "W2"); (0, "W2"); (1, "W4"); (5, "W1"); (1, "W1"); (1, "W3") ]
  in
  let run config =
    let s = Workload.Runner.make ~mimic ~params ~config () in
    List.map
      (fun (uid, qname) ->
        let q = Workload.Runner.query s qname in
        match Engine.submit s.Workload.Runner.engine ~uid q.Workload.Queries.sql with
        | Engine.Accepted _ -> "A"
        | Engine.Rejected (ms, _) -> "R:" ^ String.concat "," (List.sort compare ms))
      stream
  in
  let noopt = run Engine.noopt_config in
  let full = run Engine.default_config in
  Alcotest.(check (list string)) "optimizations preserve decisions" noopt full;
  (* and each optimization alone *)
  let base = Engine.noopt_config in
  List.iter
    (fun (label, config) ->
      Alcotest.(check (list string)) label noopt (run config))
    [
      ("ti only", { base with Engine.time_independent = true });
      ("compaction only", { base with Engine.log_compaction = true });
      ("serial strategy", { base with Engine.strategy = Engine.Serial });
      ( "interleaved only",
        { base with Engine.strategy = Engine.Interleaved } );
      ( "interleaved+improved",
        {
          base with
          Engine.strategy = Engine.Interleaved;
          improved_partial = true;
        } );
      ( "compaction+preemptive+ti",
        {
          base with
          Engine.log_compaction = true;
          preemptive = true;
          time_independent = true;
        } );
      ("unification only", { base with Engine.unification = true });
    ]

let suite =
  [
    tc "accept and reject" test_accept_and_reject;
    tc "rejection reverts log" test_rejection_reverts_log;
    tc "query results returned" test_query_results_returned;
    tc "rate limiting (optimized)" test_rate_limiting_optimized;
    tc "rate limiting (noopt)" test_rate_limiting_noopt;
    tc "compaction bounds log" test_compaction_bounds_log;
    tc "TI policy stores nothing" test_ti_policy_stores_nothing;
    tc "multiple policies report all messages" test_multiple_policies_all_messages;
    tc "policy added mid-stream" test_policy_added_mid_stream;
    tc "P5b output privacy" test_p5b_output_privacy;
    Alcotest.test_case "noopt equivalence" `Slow test_noopt_equivalence;
  ]
