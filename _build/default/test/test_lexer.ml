open Relational

let toks src = Array.to_list (Array.map fst (Lexer.tokenize src))

let token : Token.t Alcotest.testable =
  Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (Token.to_string t)) ( = )

let check = Alcotest.check (Alcotest.list token)

let test_idents_and_keywords () =
  check "mixed case idents"
    [ Ident "SELECT"; Ident "foo"; Ident "_bar9"; Eof ]
    (toks "SELECT foo _bar9")

let test_numbers () =
  check "ints and floats"
    [ Int_lit 42; Float_lit 3.5; Float_lit 1e3; Int_lit 0; Eof ]
    (toks "42 3.5 1e3 0")

let test_number_then_dot () =
  (* "1." must not swallow the dot when not followed by a digit: needed for
     ranges like "a.b" after numbers in practice this is "1 . x". *)
  check "int dot ident" [ Int_lit 1; Dot; Ident "x"; Eof ] (toks "1 . x")

let test_strings () =
  check "simple string" [ Str_lit "hello"; Eof ] (toks "'hello'");
  check "escaped quote" [ Str_lit "don't" ; Eof ] (toks "'don''t'");
  check "empty string" [ Str_lit ""; Eof ] (toks "''")

let test_quoted_ident () =
  check "quoted identifier" [ Quoted_ident "weird name"; Eof ] (toks "\"weird name\"")

let test_operators () =
  check "all operators"
    [ Eq; Neq; Neq; Lt; Le; Gt; Ge; Plus; Minus; Star; Slash; Percent; Concat; Eof ]
    (toks "= != <> < <= > >= + - * / % ||")

let test_punctuation () =
  check "punct"
    [ Lparen; Rparen; Comma; Dot; Semicolon; Eof ]
    (toks "( ) , . ;")

let test_line_comment () =
  check "line comment" [ Ident "a"; Ident "b"; Eof ] (toks "a -- comment\nb")

let test_block_comment () =
  check "block comment" [ Ident "a"; Ident "b"; Eof ] (toks "a /* x\ny */ b")

let test_unterminated_string () =
  Alcotest.check_raises "unterminated"
    (Errors.Sql_error (Errors.Parse_error, "line 1, col 4: unterminated string literal"))
    (fun () -> ignore (toks "'ab"))

let test_adjacent_tokens () =
  check "no whitespace"
    [ Ident "a"; Dot; Ident "b"; Eq; Int_lit 1; Eof ]
    (toks "a.b=1")

let suite =
  [
    Test_support.tc "idents and keywords" test_idents_and_keywords;
    Test_support.tc "numbers" test_numbers;
    Test_support.tc "number then dot" test_number_then_dot;
    Test_support.tc "strings" test_strings;
    Test_support.tc "quoted ident" test_quoted_ident;
    Test_support.tc "operators" test_operators;
    Test_support.tc "punctuation" test_punctuation;
    Test_support.tc "line comment" test_line_comment;
    Test_support.tc "block comment" test_block_comment;
    Test_support.tc "unterminated string" test_unterminated_string;
    Test_support.tc "adjacent tokens" test_adjacent_tokens;
  ]
