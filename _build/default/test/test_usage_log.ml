open Relational
open Datalawyer
open Test_support

let ctx db ?(uid = 1) ?(time = 1) sql =
  { Usage_log.uid; time; query = Parser.query sql; db; extra = [] }

let has_row rows pred = List.exists pred rows

let str_cell = function Value.Str s -> Some s | _ -> None

let test_schema_projection () =
  let db = sample_db () in
  let rows = Usage_log.schema_rows db (Parser.query "SELECT name FROM emp") in
  Alcotest.(check bool)
    "name derives from emp.name" true
    (has_row rows (fun r ->
         str_cell r.(0) = Some "name"
         && str_cell r.(1) = Some "emp"
         && str_cell r.(2) = Some "name"
         && r.(3) = Value.Bool false))

let test_schema_where_refs () =
  let db = sample_db () in
  let rows =
    Usage_log.schema_rows db (Parser.query "SELECT name FROM emp WHERE salary > 10")
  in
  Alcotest.(check bool)
    "salary recorded with NULL ocid" true
    (has_row rows (fun r ->
         r.(0) = Value.Null && str_cell r.(1) = Some "emp" && str_cell r.(2) = Some "salary"))

let test_schema_join_and_agg () =
  let db = sample_db () in
  let rows =
    Usage_log.schema_rows db
      (Parser.query
         "SELECT e.dept, COUNT(e.id) AS n FROM emp e, dept d WHERE e.dept = d.dname \
          GROUP BY e.dept")
  in
  Alcotest.(check bool)
    "agg flag set for counted column" true
    (has_row rows (fun r ->
         str_cell r.(0) = Some "n" && str_cell r.(2) = Some "id" && r.(3) = Value.Bool true));
  Alcotest.(check bool)
    "joined relation dept recorded" true
    (has_row rows (fun r -> str_cell r.(1) = Some "dept"))

let test_schema_from_only_relation () =
  let db = sample_db () in
  let rows = Usage_log.schema_rows db (Parser.query "SELECT e.name FROM emp e, dept d") in
  Alcotest.(check bool)
    "cross-joined relation recorded even when unreferenced" true
    (has_row rows (fun r -> str_cell r.(1) = Some "dept" && r.(2) = Value.Null))

let test_schema_subquery () =
  let db = sample_db () in
  let rows =
    Usage_log.schema_rows db
      (Parser.query "SELECT t.x FROM (SELECT name AS x FROM emp) t")
  in
  Alcotest.(check bool)
    "derivation traced through subquery" true
    (has_row rows (fun r ->
         str_cell r.(0) = Some "x"
         && str_cell r.(1) = Some "emp"
         && str_cell r.(2) = Some "name"))

let test_schema_star () =
  let db = sample_db () in
  let rows = Usage_log.schema_rows db (Parser.query "SELECT * FROM dept") in
  Alcotest.(check int) "one row per column" 2 (List.length rows)

let test_provenance_point () =
  let db = sample_db () in
  let rows =
    Usage_log.provenance_rows db (Parser.query "SELECT name FROM emp WHERE id = 2")
  in
  (* one output tuple, derived from exactly one emp row *)
  Alcotest.(check int) "single lineage record" 1 (List.length rows);
  match rows with
  | [ [| otid; irid; _itid |] ] ->
    Alcotest.check value "otid 0" (i 0) otid;
    Alcotest.check value "from emp" (s "emp") irid
  | _ -> Alcotest.fail "unexpected shape"

let test_provenance_join () =
  let db = sample_db () in
  let rows =
    Usage_log.provenance_rows db
      (Parser.query
         "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname AND e.id = 1")
  in
  (* the single output tuple has lineage over both emp and dept *)
  let rels = List.map (fun r -> Value.to_string r.(1)) rows in
  Alcotest.(check bool) "emp in lineage" true (List.mem "emp" rels);
  Alcotest.(check bool) "dept in lineage" true (List.mem "dept" rels)

let test_provenance_aggregate () =
  let db = sample_db () in
  let rows =
    Usage_log.provenance_rows db
      (Parser.query "SELECT dept, COUNT(*) FROM emp WHERE dept = 'eng' GROUP BY dept")
  in
  (* group of 2 employees: 2 lineage records for the single output *)
  Alcotest.(check int) "lineage unions group members" 2 (List.length rows)

let test_provenance_distinct_unions () =
  let db = sample_db () in
  let rows =
    Usage_log.provenance_rows db (Parser.query "SELECT DISTINCT dept FROM emp")
  in
  (* 3 output tuples; lineage covers all 5 input rows *)
  let otids = List.sort_uniq compare (List.map (fun r -> r.(0)) rows) in
  Alcotest.(check int) "three outputs" 3 (List.length otids);
  Alcotest.(check int) "five contributing inputs" 5 (List.length rows)

let test_generators_end_to_end () =
  let db = sample_db () in
  let engine = Engine.create db in
  ignore engine;
  let c = ctx db "SELECT name FROM emp WHERE id = 1" in
  Alcotest.(check int) "users emits one row" 1
    (List.length (Usage_log.users.Usage_log.generate c));
  Alcotest.(check bool) "schema emits rows" true
    (Usage_log.schema_gen.Usage_log.generate c <> []);
  Alcotest.(check bool) "provenance emits rows" true
    (Usage_log.provenance.Usage_log.generate c <> [])

let test_clock () =
  let db = sample_db () in
  Usage_log.install_clock db;
  Alcotest.(check int) "initial time" 0 (Usage_log.current_time db);
  Usage_log.set_clock db 7;
  Alcotest.(check int) "after set" 7 (Usage_log.current_time db);
  check_rows "visible via SQL" [ [ i 7 ] ] (Database.rows db "SELECT ts FROM clock")

let test_custom_generator () =
  (* §6 extensibility: a device log populated from the query context. *)
  let g =
    Usage_log.custom ~relation:"devices"
      ~columns:[ ("device", Relational.Ty.Text) ]
      ~rank:0
      ~generate:(fun c ->
        match List.assoc_opt "device" c.Usage_log.extra with
        | Some v -> [ [| v |] ]
        | None -> [ [| Value.Str "unknown" |] ])
  in
  let c =
    { (ctx (sample_db ()) "SELECT 1") with Usage_log.extra = [ ("device", s "mobile") ] }
  in
  Alcotest.(check bool) "reads the context" true
    (g.Usage_log.generate c = [ [| s "mobile" |] ])

let suite =
  [
    tc "schema: projection" test_schema_projection;
    tc "schema: where refs" test_schema_where_refs;
    tc "schema: join + agg flag" test_schema_join_and_agg;
    tc "schema: from-only relation" test_schema_from_only_relation;
    tc "schema: through subquery" test_schema_subquery;
    tc "schema: star" test_schema_star;
    tc "provenance: point query" test_provenance_point;
    tc "provenance: join" test_provenance_join;
    tc "provenance: aggregate" test_provenance_aggregate;
    tc "provenance: distinct" test_provenance_distinct_unions;
    tc "generators end to end" test_generators_end_to_end;
    tc "clock" test_clock;
    tc "custom generator" test_custom_generator;
  ]
