open Relational
open Test_support

let test_roundtrip () =
  let db = sample_db () in
  let csv = Csv_io.export db ~table:"emp" in
  let db2 = Database.create () in
  let n = Csv_io.import db2 ~table:"emp" csv in
  Alcotest.(check int) "all rows imported" 5 n;
  check_rows "same contents"
    (Database.rows db "SELECT * FROM emp")
    (Database.rows db2 "SELECT * FROM emp");
  (* inferred schema matches *)
  Alcotest.(check string) "schema inferred"
    (Schema.to_string (Table.schema (Database.table db "emp")))
    (Schema.to_string (Table.schema (Database.table db2 "emp")))

let test_quoting () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (a TEXT, b INT)");
  let t = Database.table db "t" in
  ignore (Table.insert t [| s "has,comma"; i 1 |]);
  ignore (Table.insert t [| s "has \"quotes\""; i 2 |]);
  ignore (Table.insert t [| s "has\nnewline"; i 3 |]);
  let csv = Csv_io.export db ~table:"t" in
  let db2 = Database.create () in
  ignore (Csv_io.import db2 ~table:"t" csv);
  check_rows "quoted fields survive"
    (Database.rows db "SELECT a, b FROM t")
    (Database.rows db2 "SELECT a, b FROM t")

let test_nulls () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (a INT, b TEXT)");
  let t = Database.table db "t" in
  ignore (Table.insert t [| null; s "x" |]);
  ignore (Table.insert t [| i 2; null |]);
  let csv = Csv_io.export db ~table:"t" in
  let db2 = Database.create () in
  ignore (Database.exec db2 "CREATE TABLE t (a INT, b TEXT)");
  ignore (Csv_io.import db2 ~table:"t" csv);
  check_rows "nulls round-trip"
    [ [ null; s "x" ]; [ i 2; null ] ]
    (Database.rows db2 "SELECT a, b FROM t")

let test_type_inference () =
  let db = Database.create () in
  ignore
    (Csv_io.import db ~table:"t" "i,f,b,s\n1,1.5,true,abc\n2,2.5,false,def\n");
  let schema = Table.schema (Database.table db "t") in
  let ty name =
    (Schema.column schema (Option.get (Schema.find_index schema name))).Schema.ty
  in
  Alcotest.(check string) "int" "INT" (Ty.to_string (ty "i"));
  Alcotest.(check string) "float" "FLOAT" (Ty.to_string (ty "f"));
  Alcotest.(check string) "bool" "BOOL" (Ty.to_string (ty "b"));
  Alcotest.(check string) "text" "TEXT" (Ty.to_string (ty "s"))

let test_errors () =
  let db = Database.create () in
  (match Csv_io.import db ~table:"t" "" with
  | exception Errors.Sql_error (Errors.Parse_error, _) -> ()
  | _ -> Alcotest.fail "empty input must fail");
  (match Csv_io.import db ~table:"t2" "a,b\n1\n" with
  | exception Errors.Sql_error (Errors.Parse_error, _) -> ()
  | _ -> Alcotest.fail "ragged record must fail");
  ignore (Database.exec db "CREATE TABLE t3 (a INT)");
  match Csv_io.import db ~table:"t3" "a\nnot_an_int\n" with
  | exception Errors.Sql_error (Errors.Type_error, _) -> ()
  | _ -> Alcotest.fail "coercion failure must fail"

let suite =
  [
    tc "round-trip" test_roundtrip;
    tc "quoting" test_quoting;
    tc "nulls" test_nulls;
    tc "type inference" test_type_inference;
    tc "errors" test_errors;
  ]
