open Relational
open Datalawyer
open Test_support

let setup () =
  let db = sample_db () in
  let e = Engine.create db in
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  (db, e, is_log)

let witness_sqls w =
  match w with
  | Witness.Keep_all -> [ "KEEP_ALL" ]
  | Witness.Queries qs -> List.map (fun q -> Sql_print.select q) qs

let get rel ws =
  match List.assoc_opt rel ws with
  | Some w -> w
  | None -> Alcotest.failf "no witness entry for %s" rel

let test_window_policy_witness () =
  let _, e, is_log = setup () in
  let p =
    Engine.add_policy e ~name:"w"
      "SELECT DISTINCT 'x' FROM users u, clock c WHERE u.uid = 1 AND u.ts > c.ts - 10 \
       HAVING COUNT(DISTINCT u.ts) > 3"
  in
  let ws = Witness.for_policy ~is_log ~now:100 p in
  match get "users" ws with
  | Witness.Keep_all -> Alcotest.fail "expected a witness query"
  | Witness.Queries [ q ] ->
    let sql = Sql_print.select q in
    (* HAVING present -> Eq. 2 full-query witness, no DISTINCT ON *)
    Alcotest.(check bool) "projects the target" true
      (Test_policy.contains_substring sql "u.*");
    (* clock lower bound frozen at now+1: c.ts < u.ts + 10 -> 101 < u.ts + 10 *)
    Alcotest.(check bool) "frontier constant" true
      (Test_policy.contains_substring sql "101");
    Alcotest.(check bool) "clock relation dropped" false
      (Test_policy.contains_substring sql "clock")
  | Witness.Queries qs -> Alcotest.failf "expected one query, got %d" (List.length qs)

let test_window_witness_semantics () =
  (* Execute the generated witness and check it retains exactly the
     in-window, predicate-matching tuples. *)
  let db, e, is_log = setup () in
  let p =
    Engine.add_policy e ~name:"w"
      "SELECT DISTINCT 'x' FROM users u, clock c WHERE u.uid = 1 AND u.ts > c.ts - 10 \
       HAVING COUNT(DISTINCT u.ts) > 3"
  in
  let users = Database.table db "users" in
  (* rows at various times and uids *)
  List.iter
    (fun (ts, uid) -> ignore (Table.insert users [| i ts; i uid |]))
    [ (80, 1); (89, 1); (92, 1); (95, 2); (99, 1); (100, 1) ];
  let ws = Witness.for_policy ~is_log ~now:100 p in
  match get "users" ws with
  | Witness.Keep_all -> Alcotest.fail "expected query"
  | Witness.Queries qs ->
    let retained = Hashtbl.create 8 in
    List.iter
      (fun q ->
        let r =
          Executor.run
            ~opts:{ Executor.lineage = false; track_src = true }
            (Database.catalog db) (Ast.Select q)
        in
        List.iter
          (fun (row : Executor.row_out) ->
            List.iter
              (fun (slot, tid) -> if slot = 0 then Hashtbl.replace retained tid ())
              row.Executor.src_tids)
          r.Executor.out_rows)
      qs;
    let kept_ts =
      Table.rows users
      |> List.filter (fun row -> Hashtbl.mem retained (Row.tid row))
      |> List.map (fun row -> Row.cell row 0)
      |> List.sort Value.compare
    in
    (* The frozen predicate is 101 < ts + 10, i.e. ts > 91; uid must be 1.
       So ts 92, 99, 100 are retained; 80, 89 are out of any future
       window; 95 is uid 2. *)
    Alcotest.check (Alcotest.list value) "retained exactly the live window"
      [ i 92; i 99; i 100 ] kept_ts

let test_boolean_policy_distinct_on () =
  let _, e, is_log = setup () in
  (* Example 4.1's P1: boolean, self-join -> two DISTINCT ON witnesses *)
  let p =
    Engine.add_policy e ~name:"nj"
      "SELECT DISTINCT 'no joins' FROM schema p1, schema p2 \
       WHERE p1.ts = p2.ts AND p1.irid = 'emp' AND p2.irid != 'emp'"
  in
  let ws = Witness.for_policy ~is_log ~now:5 p in
  match get "schema" ws with
  | Witness.Keep_all -> Alcotest.fail "expected queries"
  | Witness.Queries qs ->
    Alcotest.(check int) "one witness per self-join occurrence" 2 (List.length qs);
    List.iter
      (fun q ->
        match q.Ast.distinct with
        | Ast.Distinct_on _ -> ()
        | _ -> Alcotest.fail "boolean policy witness must use DISTINCT ON")
      qs

let test_neighborhood_restriction () =
  let _, e, is_log = setup () in
  (* users and schema are ts-joined; provenance is NOT: provenance must not
     appear in users' witness FROM. *)
  let p =
    Engine.add_policy e ~name:"nb"
      "SELECT DISTINCT 'x' FROM users u, schema s, provenance p \
       WHERE u.ts = s.ts AND u.uid = 1 AND p.irid = 'emp'"
  in
  let ws = Witness.for_policy ~is_log ~now:5 p in
  (match get "users" ws with
  | Witness.Queries [ q ] ->
    let sql = Sql_print.select q in
    Alcotest.(check bool) "schema in neighborhood" true
      (Test_policy.contains_substring sql "schema");
    Alcotest.(check bool) "provenance not in neighborhood" false
      (Test_policy.contains_substring sql "provenance")
  | _ -> Alcotest.fail "expected single users witness");
  match get "provenance" ws with
  | Witness.Queries [ q ] ->
    Alcotest.(check int) "provenance witness stands alone" 1 (List.length q.Ast.from)
  | _ -> Alcotest.fail "expected single provenance witness"

let test_unsupported_clock_keeps_all () =
  let _, e, is_log = setup () in
  let p =
    Engine.add_policy e ~name:"neq"
      "SELECT DISTINCT 'x' FROM users u, clock c WHERE u.ts != c.ts"
  in
  match get "users" (Witness.for_policy ~is_log ~now:5 p) with
  | Witness.Keep_all -> ()
  | Witness.Queries _ -> Alcotest.fail "clock != must disable compaction"

let test_ti_rewritten_policy_empty_witness () =
  let db, e, is_log = setup () in
  let p =
    Engine.add_policy e ~name:"ti"
      "SELECT DISTINCT 'x' FROM users u, schema s WHERE u.ts = s.ts AND u.uid = 1"
  in
  let p = Time_independent.apply ~is_log p in
  (* seed some log content *)
  let users = Database.table db "users" in
  ignore (Table.insert users [| i 3; i 1 |]);
  let ws = Witness.for_policy ~is_log ~now:3 p in
  match get "users" ws with
  | Witness.Keep_all -> Alcotest.fail "expected queries"
  | Witness.Queries qs ->
    (* Example 4.4: all witnesses of a TI-rewritten policy are empty. *)
    List.iter
      (fun q ->
        Alcotest.(check bool) "witness empty" true
          (Executor.is_empty (Database.catalog db) (Ast.Select q)))
      qs

(* Soundness property: evaluating the policy on the compacted log agrees
   with evaluating it on the full log, for the current time and future
   times (absolute witness, Def 4.1). Uses randomized logs. *)
let test_witness_soundness_randomized () =
  let rng = Mimic.Rng.create ~seed:7 in
  for _trial = 1 to 25 do
    let db, e, is_log = setup () in
    let window = 3 + Mimic.Rng.int rng 8 in
    let threshold = 1 + Mimic.Rng.int rng 3 in
    let p =
      Engine.add_policy e
        ~name:"rnd"
        (Printf.sprintf
           "SELECT DISTINCT 'v' FROM users u, clock c WHERE u.uid = 1 AND u.ts > c.ts - %d \
            HAVING COUNT(DISTINCT u.ts) > %d"
           window threshold)
    in
    let users = Database.table db "users" in
    let now = 20 in
    for ts = 1 to now do
      if Mimic.Rng.int rng 3 > 0 then
        ignore (Table.insert users [| i ts; i (Mimic.Rng.int rng 2) |])
    done;
    (* compute retained set *)
    let retained = Hashtbl.create 16 in
    (match List.assoc_opt "users" (Witness.for_policy ~is_log ~now p) with
    | Some (Witness.Queries qs) ->
      Usage_log.set_clock db now;
      List.iter
        (fun q ->
          let r =
            Executor.run
              ~opts:{ Executor.lineage = false; track_src = true }
              (Database.catalog db) (Ast.Select q)
          in
          List.iter
            (fun (row : Executor.row_out) ->
              List.iter
                (fun (slot, tid) -> if slot = 0 then Hashtbl.replace retained tid ())
                row.Executor.src_tids)
            r.Executor.out_rows)
        qs
    | _ -> Alcotest.fail "expected queries");
    (* Full-log vs compacted-log evaluation from now+1 on: compaction runs
       after the time-now check, and Lemma 4.3's currenttime+1 frontier
       only guarantees evaluations from the next timestamp onwards. *)
    let eval_at t =
      Usage_log.set_clock db t;
      Executor.is_empty (Database.catalog db) p.Policy.query
    in
    let full = List.init (window + 3) (fun k -> eval_at (now + 1 + k)) in
    ignore (Table.retain_tids users retained);
    let compacted = List.init (window + 3) (fun k -> eval_at (now + 1 + k)) in
    Alcotest.(check (list bool)) "absolute witness preserves evaluation" full compacted
  done

let suite =
  [
    tc "window policy witness shape" test_window_policy_witness;
    tc "window witness semantics" test_window_witness_semantics;
    tc "boolean policy DISTINCT ON" test_boolean_policy_distinct_on;
    tc "neighborhood restriction" test_neighborhood_restriction;
    tc "unsupported clock keeps all" test_unsupported_clock_keeps_all;
    tc "TI-rewritten policy has empty witness" test_ti_rewritten_policy_empty_witness;
    Alcotest.test_case "witness soundness (randomized)" `Slow
      test_witness_soundness_randomized;
  ]
