(* Edge cases of the storage and execution substrate. *)

open Relational
open Test_support

let test_insert_type_checking () =
  let db = db_of_script "CREATE TABLE t (a INT, b FLOAT, c TEXT)" in
  let t = Database.table db "t" in
  (* int widens into float columns *)
  ignore (Table.insert t [| i 1; i 2; s "x" |]);
  (* NULL fits anywhere *)
  ignore (Table.insert t [| null; null; null |]);
  Alcotest.check_raises "text into int"
    (Errors.Sql_error
       (Errors.Type_error, "table t column a: expected INT, got TEXT (oops)"))
    (fun () -> ignore (Table.insert t [| s "oops"; f 1.; s "x" |]));
  (match Table.insert t [| i 1; f 2. |] with
  | exception Errors.Sql_error (Errors.Runtime_error, _) -> ()
  | _ -> Alcotest.fail "arity mismatch must fail");
  Alcotest.(check int) "failed inserts left no rows" 2 (Table.row_count t)

let test_savepoint_guards () =
  let db = db_of_script "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)" in
  let t = Database.table db "t" in
  let sp = Table.savepoint t in
  (match Table.delete_where t (fun _ -> true) with
  | exception Errors.Sql_error (Errors.Runtime_error, _) -> ()
  | _ -> Alcotest.fail "delete during savepoint must fail");
  (match Table.update_where t (fun _ -> true) (fun c -> c) with
  | exception Errors.Sql_error (Errors.Runtime_error, _) -> ()
  | _ -> Alcotest.fail "update during savepoint must fail");
  Table.release t sp;
  Alcotest.(check int) "deletes allowed after release" 1
    (Table.delete_where t (fun _ -> true))

let test_find_by_tid_after_deletion () =
  let db = db_of_script "CREATE TABLE t (a INT); INSERT INTO t VALUES (10), (20), (30)" in
  let t = Database.table db "t" in
  ignore
    (Table.delete_where t (fun r -> Value.equal (Row.cell r 0) (i 20)));
  Alcotest.(check bool) "tid 0 present" true (Table.find_by_tid t 0 <> None);
  Alcotest.(check bool) "tid 1 deleted" true (Table.find_by_tid t 1 = None);
  Alcotest.(check bool) "tid 2 present" true (Table.find_by_tid t 2 <> None);
  (* tids are not reused after deletion *)
  let tid = Table.insert t [| i 40 |] in
  Alcotest.(check int) "fresh tid" 3 tid

let test_catalog_kinds () =
  let cat = Catalog.create () in
  let schema = Schema.make [ ("x", Ty.Int) ] in
  ignore (Catalog.create_table cat ~name:"base_t" ~schema);
  ignore (Catalog.create_table ~kind:Catalog.Log cat ~name:"log_t" ~schema);
  Alcotest.(check bool) "base not log" false (Catalog.is_log cat "base_t");
  Alcotest.(check bool) "log is log" true (Catalog.is_log cat "LOG_T");
  Alcotest.(check (list string)) "log names" [ "log_t" ] (Catalog.log_table_names cat);
  (match Catalog.create_table cat ~name:"BASE_T" ~schema with
  | exception Errors.Sql_error (Errors.Catalog_error, _) -> ()
  | _ -> Alcotest.fail "case-insensitive duplicate must fail");
  match Catalog.drop cat "nope" with
  | exception Errors.Sql_error (Errors.Catalog_error, _) -> ()
  | _ -> Alcotest.fail "dropping unknown table must fail"

let test_order_by_multi_key () =
  let db =
    db_of_script
      "CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 9), (2, 1), (1, 3), (2, 7)"
  in
  check_rows_ordered "a asc, b desc"
    [ [ i 1; i 9 ]; [ i 1; i 3 ]; [ i 2; i 7 ]; [ i 2; i 1 ] ]
    (Database.rows db "SELECT a, b FROM t ORDER BY a, b DESC")

let test_limit_zero () =
  let db = sample_db () in
  check_rows "limit 0" [] (Database.rows db "SELECT name FROM emp LIMIT 0")

let test_nested_subqueries () =
  let db = sample_db () in
  check_rows "three levels"
    [ [ s "eng"; i 2 ] ]
    (Database.rows db
       "SELECT q2.dept, q2.n FROM (SELECT q1.dept, q1.n FROM (SELECT dept, \
        COUNT(*) AS n FROM emp GROUP BY dept) q1 WHERE q1.n > 1) q2 WHERE \
        q2.dept = 'eng'")

let test_union_of_unions () =
  let db = sample_db () in
  check_rows "nested unions dedupe"
    [ [ s "eng" ]; [ s "ops" ]; [ s "mgmt" ] ]
    (Database.rows db
       "SELECT dept FROM emp UNION SELECT dname FROM dept UNION SELECT dept \
        FROM emp WHERE salary > 100")

let test_case_is_lazy () =
  let db = sample_db () in
  (* the ELSE branch would divide by zero but is never taken *)
  check_rows "case short-circuits"
    [ [ i 1 ] ]
    (Database.rows db "SELECT CASE WHEN 1 = 1 THEN 1 ELSE 1 / 0 END")

let test_and_or_short_circuit_semantics () =
  let db = db_of_script "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)" in
  (* no short-circuit guarantee needed for correctness of results *)
  check_rows "or with comparison" [ [ i 1 ]; [ i 2 ] ]
    (Database.rows db "SELECT a FROM t WHERE a = 1 OR a >= 2")

let test_like_type_error () =
  let db = sample_db () in
  match Database.rows db "SELECT name FROM emp WHERE name LIKE 5" with
  | exception Errors.Sql_error (Errors.Type_error, _) -> ()
  | _ -> Alcotest.fail "non-string LIKE pattern must fail"

let test_float_division_by_zero () =
  let db = sample_db () in
  match Database.rows db "SELECT 1.0 / 0.0" with
  | exception Errors.Sql_error (Errors.Runtime_error, _) -> ()
  | _ -> Alcotest.fail "float division by zero must fail"

let test_scalar_helper () =
  let db = sample_db () in
  Alcotest.check value "scalar" (i 5) (Database.scalar db "SELECT COUNT(*) FROM emp");
  (match Database.scalar db "SELECT id FROM emp" with
  | exception Errors.Sql_error (Errors.Runtime_error, _) -> ()
  | _ -> Alcotest.fail "multi-row scalar must fail");
  match Database.scalar db "SELECT id FROM emp WHERE id = 99" with
  | exception Errors.Sql_error (Errors.Runtime_error, _) -> ()
  | _ -> Alcotest.fail "empty scalar must fail"

let test_render () =
  let db = sample_db () in
  let out = Database.render (Database.query db "SELECT name FROM emp WHERE id = 1") in
  Alcotest.(check bool) "mentions header" true (Test_policy.contains_substring out "name");
  Alcotest.(check bool) "mentions row" true (Test_policy.contains_substring out "ada");
  Alcotest.(check bool) "mentions count" true (Test_policy.contains_substring out "(1 rows)")

let test_quoted_identifier_table () =
  let db = db_of_script "CREATE TABLE \"select\" (a INT); INSERT INTO \"select\" VALUES (7)" in
  check_rows "keyword table name via quotes" [ [ i 7 ] ]
    (Database.rows db "SELECT a FROM \"select\"")

let suite =
  [
    tc "insert type checking" test_insert_type_checking;
    tc "savepoint guards" test_savepoint_guards;
    tc "find_by_tid after deletion" test_find_by_tid_after_deletion;
    tc "catalog kinds and errors" test_catalog_kinds;
    tc "order by multiple keys" test_order_by_multi_key;
    tc "limit 0" test_limit_zero;
    tc "nested subqueries" test_nested_subqueries;
    tc "union of unions" test_union_of_unions;
    tc "CASE is lazy" test_case_is_lazy;
    tc "boolean predicates" test_and_or_short_circuit_semantics;
    tc "LIKE type error" test_like_type_error;
    tc "float division by zero" test_float_division_by_zero;
    tc "scalar helper" test_scalar_helper;
    tc "result rendering" test_render;
    tc "quoted identifiers" test_quoted_identifier_table;
  ]
