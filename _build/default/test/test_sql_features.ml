(* IN / BETWEEN / LIKE / CASE / IS NULL coverage, including their use
   inside policies. *)

open Relational
open Datalawyer
open Test_support

let q db sql = Database.rows db sql

let test_in_list () =
  let db = sample_db () in
  check_rows "IN list"
    [ [ s "ada" ]; [ s "cyd" ] ]
    (q db "SELECT name FROM emp WHERE name IN ('ada', 'cyd', 'zed')");
  check_rows "NOT IN"
    [ [ s "bob" ]; [ s "dee" ]; [ s "eli" ] ]
    (q db "SELECT name FROM emp WHERE name NOT IN ('ada', 'cyd')");
  check_rows "IN over expressions"
    [ [ i 1 ]; [ i 3 ] ]
    (q db "SELECT id FROM emp WHERE id IN (1, 1 + 2)")

let test_between () =
  let db = sample_db () in
  check_rows "BETWEEN is inclusive"
    [ [ s "bob" ]; [ s "dee" ] ]
    (q db "SELECT name FROM emp WHERE salary BETWEEN 90 AND 100");
  check_rows "NOT BETWEEN"
    [ [ s "ada" ]; [ s "cyd" ]; [ s "eli" ] ]
    (q db "SELECT name FROM emp WHERE salary NOT BETWEEN 90 AND 100")

let test_like () =
  let db = sample_db () in
  check_rows "prefix wildcard" [ [ s "ada" ] ] (q db "SELECT name FROM emp WHERE name LIKE 'a%'");
  check_rows "suffix wildcard"
    [ [ s "ada" ] ]
    (q db "SELECT name FROM emp WHERE name LIKE '%da'");
  check_rows "single char"
    [ [ s "bob" ] ]
    (q db "SELECT name FROM emp WHERE name LIKE 'b_b'");
  check_rows "infix"
    [ [ s "ada" ]; [ s "cyd" ]; [ s "dee" ] ]
    (q db "SELECT name FROM emp WHERE name LIKE '%d%'");
  check_rows "NOT LIKE"
    [ [ s "bob" ]; [ s "eli" ] ]
    (q db "SELECT name FROM emp WHERE name NOT LIKE '%d%'");
  check_rows "no wildcard = equality"
    [ [ s "eli" ] ]
    (q db "SELECT name FROM emp WHERE name LIKE 'eli'");
  check_rows "percent matches empty"
    [ [ s "eli" ] ]
    (q db "SELECT name FROM emp WHERE name LIKE 'eli%'")

let test_case () =
  let db = sample_db () in
  check_rows "searched case"
    [
      [ s "ada"; s "high" ]; [ s "bob"; s "mid" ]; [ s "cyd"; s "low" ];
      [ s "dee"; s "low" ]; [ s "eli"; s "high" ];
    ]
    (q db
       "SELECT name, CASE WHEN salary > 110 THEN 'high' WHEN salary > 95 THEN \
        'mid' ELSE 'low' END FROM emp");
  check_rows "case without else yields NULL"
    [ [ null ] ]
    (q db "SELECT CASE WHEN 1 = 2 THEN 'x' END");
  check_rows "case in aggregate argument"
    [ [ i 2 ] ]
    (q db "SELECT SUM(CASE WHEN dept = 'eng' THEN 1 ELSE 0 END) FROM emp")

let test_is_null () =
  let db = db_of_script "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (NULL)" in
  check_rows "is null" [ [ null ] ] (q db "SELECT a FROM t WHERE a IS NULL");
  check_rows "is not null" [ [ i 1 ] ] (q db "SELECT a FROM t WHERE a IS NOT NULL")

let test_roundtrip_new_features () =
  List.iter
    (fun src ->
      let q1 = Parser.query src in
      let printed = Sql_print.query q1 in
      let q2 = Parser.query printed in
      if not (Ast.equal_query q1 q2) then
        Alcotest.failf "round-trip mismatch: %S -> %S" src printed)
    [
      "SELECT a FROM t WHERE a LIKE 'x%'";
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t";
      "SELECT a FROM t WHERE b NOT LIKE '%y'";
    ]

(* A policy using LIKE: restrict access to any relation matching a naming
   convention — the kind of catch-all clause real terms of use contain. *)
let test_policy_with_like () =
  let db =
    db_of_script
      {|
      CREATE TABLE licensed_maps (x INT); CREATE TABLE licensed_ratings (x INT);
      CREATE TABLE public_stuff (x INT);
      INSERT INTO licensed_maps VALUES (1); INSERT INTO licensed_ratings VALUES (2);
      INSERT INTO public_stuff VALUES (3)
      |}
  in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"licensed_only_standalone"
       "SELECT DISTINCT 'licensed relations may not be combined' FROM schema \
        s1, schema s2 WHERE s1.ts = s2.ts AND s1.irid LIKE 'licensed%' AND \
        s2.irid NOT LIKE 'licensed%'");
  let ok = function Engine.Accepted _ -> true | Engine.Rejected _ -> false in
  Alcotest.(check bool) "licensed standalone fine" true
    (ok (Engine.submit e ~uid:1 "SELECT x FROM licensed_maps"));
  Alcotest.(check bool) "two licensed together fine" true
    (ok
       (Engine.submit e ~uid:1
          "SELECT m.x FROM licensed_maps m, licensed_ratings r WHERE m.x < r.x"));
  Alcotest.(check bool) "licensed + public rejected" false
    (ok
       (Engine.submit e ~uid:1
          "SELECT m.x FROM licensed_maps m, public_stuff p WHERE m.x < p.x"))

(* A policy using IN: a blocklist of relations per user. *)
let test_policy_with_in () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"blocklist"
       "SELECT DISTINCT 'restricted relation for this user' FROM schema s, \
        users u WHERE s.ts = u.ts AND u.uid IN (3, 4) AND s.irid IN ('emp')");
  let ok = function Engine.Accepted _ -> true | Engine.Rejected _ -> false in
  Alcotest.(check bool) "uid 2 free" true
    (ok (Engine.submit e ~uid:2 "SELECT name FROM emp"));
  Alcotest.(check bool) "uid 3 blocked" false
    (ok (Engine.submit e ~uid:3 "SELECT name FROM emp"));
  Alcotest.(check bool) "uid 4 blocked from emp only" true
    (ok (Engine.submit e ~uid:4 "SELECT dname FROM dept"))

let test_scalar_functions () =
  let db = sample_db () in
  check_rows "abs" [ [ i 5; f 2.5 ] ] (q db "SELECT ABS(-5), ABS(-2.5)");
  check_rows "length/lower/upper"
    [ [ i 3; s "ada"; s "ADA" ] ]
    (q db "SELECT LENGTH(name), LOWER(UPPER(name)), UPPER(name) FROM emp WHERE id = 1");
  check_rows "coalesce picks first non-null"
    [ [ i 7 ] ]
    (q db "SELECT COALESCE(NULL, NULL, 7, 9)");
  check_rows "coalesce all null" [ [ null ] ] (q db "SELECT COALESCE(NULL, NULL)");
  check_rows "round" [ [ i 3; i 2 ] ] (q db "SELECT ROUND(2.6), ROUND(2.4)");
  check_rows "functions in predicates"
    [ [ s "ada" ]; [ s "bob" ]; [ s "cyd" ]; [ s "dee" ]; [ s "eli" ] ]
    (q db "SELECT name FROM emp WHERE LENGTH(name) = 3");
  (match q db "SELECT ABS(1, 2)" with
  | exception Errors.Sql_error (Errors.Bind_error, _) -> ()
  | _ -> Alcotest.fail "wrong arity must fail");
  match q db "SELECT LENGTH(5)" with
  | exception Errors.Sql_error (Errors.Type_error, _) -> ()
  | _ -> Alcotest.fail "wrong type must fail"

let suite =
  [
    tc "scalar functions" test_scalar_functions;
    tc "IN lists" test_in_list;
    tc "BETWEEN" test_between;
    tc "LIKE" test_like;
    tc "CASE" test_case;
    tc "IS NULL" test_is_null;
    tc "round-trip of new features" test_roundtrip_new_features;
    tc "policy with LIKE" test_policy_with_like;
    tc "policy with IN" test_policy_with_in;
  ]
